#include "memory/freelist_allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace xbgas {
namespace {

TEST(FreeListTest, FirstAllocationAtZero) {
  FreeListAllocator alloc(1024);
  EXPECT_EQ(alloc.allocate(64).value(), 0u);
}

TEST(FreeListTest, SequentialAllocationsAreAdjacent) {
  FreeListAllocator alloc(1024);
  EXPECT_EQ(alloc.allocate(64).value(), 0u);
  EXPECT_EQ(alloc.allocate(64).value(), 64u);
  EXPECT_EQ(alloc.allocate(64).value(), 128u);
}

TEST(FreeListTest, SizesRoundUpToAlignment) {
  FreeListAllocator alloc(1024);
  EXPECT_EQ(alloc.allocate(1).value(), 0u);
  EXPECT_EQ(alloc.allocate(1).value(), 16u);  // 1 byte occupies 16
  EXPECT_EQ(alloc.allocation_size(0), 16u);
}

TEST(FreeListTest, ZeroByteAllocationGetsDistinctBlock) {
  FreeListAllocator alloc(1024);
  const auto a = alloc.allocate(0).value();
  const auto b = alloc.allocate(0).value();
  EXPECT_NE(a, b);
}

TEST(FreeListTest, ExhaustionReturnsNullopt) {
  FreeListAllocator alloc(64);
  EXPECT_TRUE(alloc.allocate(64).has_value());
  EXPECT_FALSE(alloc.allocate(16).has_value());
}

TEST(FreeListTest, ReleaseMakesSpaceReusable) {
  FreeListAllocator alloc(64);
  const auto a = alloc.allocate(64).value();
  alloc.release(a);
  EXPECT_EQ(alloc.allocate(64).value(), a);
}

TEST(FreeListTest, FirstFitReusesEarliestHole) {
  FreeListAllocator alloc(1024);
  const auto a = alloc.allocate(64).value();
  (void)alloc.allocate(64);
  const auto c = alloc.allocate(64).value();
  (void)c;
  alloc.release(a);
  EXPECT_EQ(alloc.allocate(32).value(), a);  // hole at front reused first
}

TEST(FreeListTest, CoalescingRestoresFullBlock) {
  FreeListAllocator alloc(256);
  std::vector<std::size_t> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(alloc.allocate(64).value());
  // Release out of order; coalescing must restore one 256-byte block.
  alloc.release(blocks[1]);
  alloc.release(blocks[3]);
  alloc.release(blocks[0]);
  alloc.release(blocks[2]);
  EXPECT_EQ(alloc.largest_free_block(), 256u);
  EXPECT_EQ(alloc.bytes_in_use(), 0u);
}

TEST(FreeListTest, DoubleFreeThrows) {
  FreeListAllocator alloc(256);
  const auto a = alloc.allocate(64).value();
  alloc.release(a);
  EXPECT_THROW(alloc.release(a), Error);
}

TEST(FreeListTest, ReleaseOfUnknownOffsetThrows) {
  FreeListAllocator alloc(256);
  EXPECT_THROW(alloc.release(32), Error);
}

TEST(FreeListTest, LiveTracking) {
  FreeListAllocator alloc(256);
  const auto a = alloc.allocate(64).value();
  EXPECT_TRUE(alloc.is_live(a));
  EXPECT_EQ(alloc.live_allocations(), 1u);
  alloc.release(a);
  EXPECT_FALSE(alloc.is_live(a));
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

TEST(FreeListTest, DeterminismAcrossInstances) {
  // The symmetric-heap property: two allocators fed the same call sequence
  // return the same offsets. Drive both with a random alloc/free workload.
  FreeListAllocator a(1 << 20), b(1 << 20);
  Xoshiro256ss rng(99);
  std::vector<std::size_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_below(100) < 60) {
      const std::size_t size = 1 + rng.next_below(4096);
      const auto ra = a.allocate(size);
      const auto rb = b.allocate(size);
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (ra) {
        ASSERT_EQ(*ra, *rb);
        live.push_back(*ra);
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      const std::size_t off = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      a.release(off);
      b.release(off);
    }
  }
  EXPECT_EQ(a.bytes_in_use(), b.bytes_in_use());
  EXPECT_EQ(a.largest_free_block(), b.largest_free_block());
}

TEST(FreeListTest, FragmentationThenFullRecovery) {
  FreeListAllocator alloc(1 << 16);
  std::vector<std::size_t> blocks;
  for (int i = 0; i < 256; ++i) blocks.push_back(alloc.allocate(256).value());
  for (std::size_t i = 0; i < blocks.size(); i += 2) alloc.release(blocks[i]);
  // Half-fragmented: a 512-byte request cannot fit in 256-byte holes...
  EXPECT_EQ(alloc.largest_free_block(), 256u);
  for (std::size_t i = 1; i < blocks.size(); i += 2) alloc.release(blocks[i]);
  EXPECT_EQ(alloc.largest_free_block(), std::size_t{1} << 16);
}

}  // namespace
}  // namespace xbgas
