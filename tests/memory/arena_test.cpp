#include "memory/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"

namespace xbgas {
namespace {

MemoryLayout small_layout() {
  return MemoryLayout{.private_bytes = 4096, .shared_bytes = 8192};
}

TEST(ArenaTest, LayoutCarvesPrivateThenShared) {
  MemoryArena arena(small_layout());
  EXPECT_EQ(arena.size(), 4096u + 8192u);
  EXPECT_EQ(arena.private_size(), 4096u);
  EXPECT_EQ(arena.shared_size(), 8192u);
  EXPECT_EQ(arena.shared_base(), arena.base() + 4096);
}

TEST(ArenaTest, ContainsChecksFullRange) {
  MemoryArena arena(small_layout());
  EXPECT_TRUE(arena.contains(arena.base(), arena.size()));
  EXPECT_TRUE(arena.contains(arena.base() + 100, 10));
  EXPECT_FALSE(arena.contains(arena.base() + arena.size() - 1, 2));
  EXPECT_FALSE(arena.contains(arena.base() - 1, 1));
}

TEST(ArenaTest, InSharedExcludesPrivateSegment) {
  MemoryArena arena(small_layout());
  EXPECT_FALSE(arena.in_shared(arena.base(), 1));
  EXPECT_FALSE(arena.in_shared(arena.base() + 4095, 1));
  EXPECT_TRUE(arena.in_shared(arena.shared_base(), 1));
  EXPECT_TRUE(arena.in_shared(arena.shared_base() + 8191, 1));
  EXPECT_FALSE(arena.in_shared(arena.shared_base() + 8191, 2));
}

TEST(ArenaTest, SharedOffsetRoundTrips) {
  MemoryArena arena(small_layout());
  for (std::size_t off : {0u, 1u, 100u, 8191u}) {
    EXPECT_EQ(arena.shared_offset_of(arena.shared_at(off)), off);
  }
}

TEST(ArenaTest, SharedOffsetRejectsPrivateAddresses) {
  MemoryArena arena(small_layout());
  EXPECT_THROW(arena.shared_offset_of(arena.base()), Error);
}

TEST(ArenaTest, SharedAtRejectsOutOfRange) {
  MemoryArena arena(small_layout());
  EXPECT_THROW(arena.shared_at(8193), Error);
}

TEST(ArenaTest, ContainmentNearArenaEndIsExact) {
  // Regression: containment used to be computed by forming `p + len` with
  // raw pointer arithmetic, which is UB for a span overhanging the segment
  // end and can wrap. The uintptr_t rewrite must accept spans that end
  // exactly at the boundary and reject every overhang by one byte.
  MemoryArena arena(small_layout());
  const std::size_t n = arena.size();
  EXPECT_TRUE(arena.contains(arena.base() + n - 1, 1));
  EXPECT_TRUE(arena.contains(arena.base() + n, 0));  // empty end span: OK
  EXPECT_FALSE(arena.contains(arena.base() + n, 1));
  EXPECT_FALSE(arena.contains(arena.base() + n - 1, 2));

  const std::size_t s = arena.shared_size();
  EXPECT_TRUE(arena.in_shared(arena.shared_base() + s - 16, 16));
  EXPECT_FALSE(arena.in_shared(arena.shared_base() + s - 16, 17));
}

TEST(ArenaTest, ContainmentSurvivesHugeLengths) {
  // A length near SIZE_MAX must not wrap the arithmetic into a false
  // positive — the overflow guard, not modular arithmetic, must answer.
  MemoryArena arena(small_layout());
  EXPECT_FALSE(arena.contains(arena.base(), SIZE_MAX));
  EXPECT_FALSE(arena.contains(arena.base() + 1, SIZE_MAX));
  EXPECT_FALSE(arena.contains(arena.base() + 1, SIZE_MAX - 1));
  EXPECT_FALSE(arena.in_shared(arena.shared_base(), SIZE_MAX));
  EXPECT_FALSE(arena.in_shared(arena.shared_base() + 8, SIZE_MAX - 8));
}

TEST(ArenaTest, MemoryIsWritable) {
  MemoryArena arena(small_layout());
  for (std::size_t i = 0; i < arena.size(); i += 997) {
    arena.base()[i] = std::byte{0xAB};
  }
  for (std::size_t i = 0; i < arena.size(); i += 997) {
    EXPECT_EQ(arena.base()[i], std::byte{0xAB});
  }
}

TEST(ArenaTest, TwoArenasAreDisjoint) {
  // The symmetric-heap model relies on arenas being physically separate.
  MemoryArena a(small_layout()), b(small_layout());
  EXPECT_FALSE(a.contains(b.base(), 1));
  EXPECT_FALSE(b.contains(a.base(), 1));
}

}  // namespace
}  // namespace xbgas
