#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace xbgas {
namespace {

TEST(BitsTest, CeilLog2SmallValues) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(7), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
}

TEST(BitsTest, CeilLog2IsTheCollectiveStageBound) {
  // ceil_log2(n) is the number of binomial-tree stages: 2^(L-1) < n <= 2^L.
  for (std::uint64_t n = 1; n <= 4096; ++n) {
    const unsigned level = ceil_log2(n);
    EXPECT_LE(n, std::uint64_t{1} << level);
    if (level > 0) {
      EXPECT_GT(n, std::uint64_t{1} << (level - 1));
    }
  }
}

TEST(BitsTest, CeilLog2RejectsZero) { EXPECT_THROW(ceil_log2(0), Error); }

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(uint64_t{1} << 63), 63u);
}

TEST(BitsTest, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 40));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 40) + 1));
}

TEST(BitsTest, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
  EXPECT_THROW(align_up(5, 3), Error);
}

TEST(BitsTest, BitsExtract) {
  EXPECT_EQ(bits(0xDEADBEEF, 0, 4), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 0, 32), 0xDEADBEEFu);
  EXPECT_EQ(bits(0b1100, 2, 2), 0b11u);
}

TEST(BitsTest, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x0, 12), 0);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
  EXPECT_EQ(sign_extend(0x80000000, 32), std::int64_t{-2147483648});
}

TEST(BitsTest, SignExtendRoundTripsThroughTruncation) {
  for (unsigned width = 1; width <= 63; ++width) {
    const std::int64_t lo = -(std::int64_t{1} << (width - 1));
    const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    for (std::int64_t v : {lo, lo + 1, std::int64_t{-1}, std::int64_t{0},
                           std::int64_t{1}, hi - 1, hi}) {
      if (v < lo || v > hi) continue;
      EXPECT_EQ(sign_extend(static_cast<std::uint64_t>(v), width), v)
          << "width=" << width << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace xbgas
