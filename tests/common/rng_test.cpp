#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace xbgas {
namespace {

__extension__ typedef unsigned __int128 u128;

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, NextBelowStaysInRange) {
  Xoshiro256ss rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, RoughUniformity) {
  Xoshiro256ss rng(123);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_below(kBuckets))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 10);
  }
}

TEST(GupsStreamTest, StartsAtOneForZero) {
  EXPECT_EQ(GupsStream::at(0).value(), 0x1u);
}

TEST(GupsStreamTest, JumpAheadMatchesSequentialAdvance) {
  // at(n) must equal n steps of the recurrence from at(0) — the property
  // GUPs depends on so each PE's slice stitches into one global stream.
  GupsStream seq = GupsStream::at(0);
  for (std::int64_t n = 1; n <= 300; ++n) {
    const std::uint64_t stepped = seq.next();
    EXPECT_EQ(GupsStream::at(n).value(), stepped) << "n=" << n;
  }
}

TEST(GupsStreamTest, JumpAheadFarPositions) {
  for (std::int64_t base : {1000ll, 123456ll, 1ll << 30}) {
    GupsStream a = GupsStream::at(base);
    a.next();
    EXPECT_EQ(a.value(), GupsStream::at(base + 1).value());
  }
}

TEST(GupsStreamTest, SequenceIsNontrivial) {
  GupsStream s = GupsStream::at(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s.next());
  EXPECT_EQ(seen.size(), 1000u);  // no short cycles
}

TEST(NasRandlcTest, MatchesReferenceFirstValue) {
  // The canonical NAS stream: x0 = 314159265, a = 5^13. The first output
  // must be (a * x0 mod 2^46) * 2^-46, computable directly in doubles via
  // integer arithmetic on 64-bit values.
  NasRandlc rng;
  const unsigned long long a = 1220703125ull;
  const unsigned long long x0 = 314159265ull;
  const unsigned long long m = 1ull << 46;
  const unsigned long long x1 = (u128{a} * x0) % m;
  EXPECT_DOUBLE_EQ(rng.next(),
                   static_cast<double>(x1) / static_cast<double>(m));
}

TEST(NasRandlcTest, MatchesIntegerLcgForManySteps) {
  NasRandlc rng;
  unsigned long long x = 314159265ull;
  const unsigned long long a = 1220703125ull;
  const unsigned long long m = 1ull << 46;
  for (int i = 0; i < 5000; ++i) {
    x = static_cast<unsigned long long>((u128{a} * x) % m);
    EXPECT_DOUBLE_EQ(rng.next(), static_cast<double>(x) / static_cast<double>(m))
        << "step " << i;
  }
}

TEST(NasRandlcTest, SkipAheadMatchesSequential) {
  // skip_ahead(seed, a, n) must equal n sequential steps — the property NAS
  // IS uses to give each PE its own key-stream slice.
  NasRandlc seq;
  for (int n = 1; n <= 200; ++n) {
    (void)seq.next();
    const double skipped =
        NasRandlc::skip_ahead(NasRandlc::kDefaultSeed, NasRandlc::kA, n);
    EXPECT_DOUBLE_EQ(skipped, seq.seed()) << "n=" << n;
  }
}

TEST(NasRandlcTest, OutputsInUnitInterval) {
  NasRandlc rng;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace xbgas
