#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace xbgas {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliTest, SpaceSeparatedFlag) {
  const CliArgs args = make({"--pes", "8"});
  EXPECT_TRUE(args.has("pes"));
  EXPECT_EQ(args.get_int("pes", 0), 8);
}

TEST(CliTest, EqualsSeparatedFlag) {
  const CliArgs args = make({"--topology=ring"});
  EXPECT_EQ(args.get("topology", ""), "ring");
}

TEST(CliTest, BareBooleanFlag) {
  const CliArgs args = make({"--verify"});
  EXPECT_TRUE(args.get_bool("verify", false));
}

TEST(CliTest, BooleanFalseSpellings) {
  EXPECT_FALSE(make({"--verify", "false"}).get_bool("verify", true));
  EXPECT_FALSE(make({"--verify=0"}).get_bool("verify", true));
  EXPECT_FALSE(make({"--verify=no"}).get_bool("verify", true));
}

TEST(CliTest, FallbacksWhenAbsent) {
  const CliArgs args = make({});
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(CliTest, IntList) {
  const CliArgs args = make({"--pes", "1,2,4,8"});
  EXPECT_EQ(args.get_int_list("pes", {}), (std::vector<int>{1, 2, 4, 8}));
}

TEST(CliTest, IntListFallback) {
  const CliArgs args = make({});
  EXPECT_EQ(args.get_int_list("pes", {3}), (std::vector<int>{3}));
}

TEST(CliTest, PositionalArguments) {
  const CliArgs args = make({"input.txt", "--n", "3", "out.txt"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.txt", "out.txt"}));
}

TEST(CliTest, HexIntegers) {
  const CliArgs args = make({"--mask", "0xff"});
  EXPECT_EQ(args.get_int("mask", 0), 255);
}

}  // namespace
}  // namespace xbgas
