// Machine::health() — a deterministic, golden-testable post-mortem: who
// died, in what order (primaries first, then by rank), and what the
// recovery layer did about it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collectives/shrink.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  return c;
}

TEST(HealthReportTest, HealthyMachineReportsEveryoneAlive) {
  Machine machine(config(3));
  machine.run([&](PeContext&) {
    xbrtime_init();
    xbrtime_close();
  });
  EXPECT_EQ(machine.health(),
            "alive 3/3\n"
            "failed ranks: []\n"
            "recovery: epoch 0, agreements 0, shrinks 0, checkpoints 0, "
            "restores 0");
}

TEST(HealthReportTest, SingleDeathMatchesGolden) {
  // With one kill every secondary unwinds with the same poison reason, so
  // the whole report is byte-for-byte deterministic.
  constexpr int kPes = 4;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});
  Machine machine(config(kPes, fc));
  machine.run([&](PeContext&) {
    xbrtime_init();
    try {
      xbrtime_barrier();  // barrier #4: rank 2 dies
    } catch (const PeFailedError&) {
      xbr_team_shrink();
    }
  });

  const std::string cause = "scripted fault: PE 2 killed at barrier #4";
  EXPECT_EQ(machine.health(),
            "alive 3/4\n"
            "failed ranks: [2]\n"
            "  rank 2 (primary): " + cause + "\n"
            "recovery: epoch 1, agreements 1, shrinks 1, checkpoints 0, "
            "restores 0");
}

TEST(HealthReportTest, UnrecoveredRegionListsSecondariesAfterPrimaries) {
  // Survivors do not catch, so the region fails and every PE lands on the
  // failure roster: the primary first, then secondaries in rank order, each
  // carrying the same poison reason.
  constexpr int kPes = 4;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});
  Machine machine(config(kPes, fc));
  EXPECT_THROW(machine.run([&](PeContext&) {
    xbrtime_init();
    xbrtime_barrier();  // rank 2 dies; nobody catches
  }),
               SpmdRegionError);

  const std::string cause = "scripted fault: PE 2 killed at barrier #4";
  const std::string poison =
      "PE 2 failed (" + cause + "); surviving PEs fail fast";
  EXPECT_EQ(machine.health(),
            "alive 3/4\n"
            "failed ranks: [2]\n"
            "  rank 2 (primary): " + cause + "\n"
            "  rank 0 (secondary): " + poison + "\n"
            "  rank 1 (secondary): " + poison + "\n"
            "  rank 3 (secondary): " + poison + "\n"
            "recovery: epoch 0, agreements 0, shrinks 0, checkpoints 0, "
            "restores 0");
}

TEST(HealthReportTest, TwoDeathsOrderPrimariesByRank) {
  // Two kills on different ranks: the primaries must come out first and in
  // rank order regardless of which PE thread unwound first. Secondary
  // what-strings are timing-dependent (either poison may land first), so
  // only the structure is asserted.
  constexpr int kPes = 6;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{4, KillSite::kBarrier, 4});
  fc.kills.push_back(KillSpec{1, KillSite::kBarrier, 4});
  Machine machine(config(kPes, fc));
  EXPECT_THROW(machine.run([&](PeContext&) {
    xbrtime_init();
    xbrtime_barrier();  // ranks 1 and 4 both die here
  }),
               SpmdRegionError);

  EXPECT_EQ(machine.failed_ranks(), (std::vector<int>{1, 4}));
  const std::vector<PeFailure> failures = machine.failures();
  ASSERT_EQ(failures.size(), static_cast<std::size_t>(kPes));
  EXPECT_EQ(failures[0].rank, 1);
  EXPECT_FALSE(failures[0].secondary);
  EXPECT_EQ(failures[1].rank, 4);
  EXPECT_FALSE(failures[1].secondary);
  const std::vector<int> survivors{0, 2, 3, 5};
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(failures[2 + i].rank, survivors[i]);
    EXPECT_TRUE(failures[2 + i].secondary);
  }
}

TEST(HealthReportTest, GoldenReportHoldsAt256Pes) {
  // The same golden-string discipline at scale (docs/SCALING.md): one death
  // in a 256-PE world, survivors recover, and the report must still be
  // byte-for-byte deterministic — aggregation is sorted, never
  // arrival-ordered, no matter how 256 fibers interleave.
  constexpr int kPes = 256;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{100, KillSite::kBarrier, 4});
  Machine machine(config(kPes, fc));
  machine.run([&](PeContext&) {
    xbrtime_init();
    try {
      xbrtime_barrier();  // barrier #4: rank 100 dies
    } catch (const PeFailedError&) {
      xbr_team_shrink();
    }
  });

  const std::string cause = "scripted fault: PE 100 killed at barrier #4";
  EXPECT_EQ(machine.health(),
            "alive 255/256\n"
            "failed ranks: [100]\n"
            "  rank 100 (primary): " + cause + "\n"
            "recovery: epoch 1, agreements 1, shrinks 1, checkpoints 0, "
            "restores 0");
}

TEST(HealthReportTest, RunTwiceProducesIdenticalReports) {
  // Determinism is the point: the same config must yield the same
  // post-mortem on every run.
  auto one_run = [] {
    FaultConfig fc;
    fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});
    Machine machine(config(4, fc));
    machine.run([&](PeContext&) {
      xbrtime_init();
      try {
        xbrtime_barrier();
      } catch (const PeFailedError&) {
        xbr_team_shrink();
      }
    });
    return machine.health();
  };
  EXPECT_EQ(one_run(), one_run());
}

}  // namespace
}  // namespace xbgas
