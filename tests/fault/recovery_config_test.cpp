// Fault-plan validation — a bad FaultConfig must be rejected with a typed
// FaultConfigError at Machine construction (before any PE thread runs), and
// the CLI front-end must reject nonsense flags the same way.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "benchlib/options.hpp"
#include "fault/errors.hpp"
#include "machine/machine.hpp"

namespace xbgas {
namespace {

MachineConfig base_config(int n_pes = 2) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 256 * 1024};
  return c;
}

void expect_rejected(const MachineConfig& config, const std::string& needle) {
  try {
    Machine machine(config);
    FAIL() << "expected FaultConfigError mentioning \"" << needle << "\"";
  } catch (const FaultConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(RecoveryConfigTest, ProbabilityAboveOneIsRejected) {
  MachineConfig c = base_config();
  c.fault.rma_drop_prob = 1.5;
  expect_rejected(c, "rma_drop_prob");
}

TEST(RecoveryConfigTest, NegativeProbabilityIsRejected) {
  MachineConfig c = base_config();
  c.fault.rma_delay_prob = -0.1;
  expect_rejected(c, "rma_delay_prob");
}

TEST(RecoveryConfigTest, NanProbabilityIsRejected) {
  MachineConfig c = base_config();
  c.fault.rma_bitflip_prob = std::nan("");
  expect_rejected(c, "rma_bitflip_prob");
}

TEST(RecoveryConfigTest, AmoDropProbabilityAboveOneIsRejected) {
  MachineConfig c = base_config();
  c.fault.amo_drop_prob = 1.01;
  expect_rejected(c, "amo_drop_prob");
}

TEST(RecoveryConfigTest, NegativeAmoDelayProbabilityIsRejected) {
  MachineConfig c = base_config();
  c.fault.amo_delay_prob = -0.2;
  expect_rejected(c, "amo_delay_prob");
}

TEST(RecoveryConfigTest, NegativeRetryBudgetIsRejected) {
  MachineConfig c = base_config();
  c.fault.max_rma_retries = -1;
  expect_rejected(c, "max_rma_retries");
}

TEST(RecoveryConfigTest, ZeroBackoffWithRetriesIsRejected) {
  // Retries with a zero backoff base would be charged zero modeled time,
  // silently understating the cost of resilience.
  MachineConfig c = base_config();
  c.fault.max_rma_retries = 3;
  c.fault.backoff_base_cycles = 0;
  expect_rejected(c, "backoff_base_cycles");
}

TEST(RecoveryConfigTest, ZeroBackoffWithoutRetriesIsFine) {
  MachineConfig c = base_config();
  c.fault.max_rma_retries = 0;
  c.fault.backoff_base_cycles = 0;
  EXPECT_NO_THROW(Machine machine(c));
}

TEST(RecoveryConfigTest, KillRankOutOfRangeIsRejected) {
  MachineConfig c = base_config(4);
  c.fault.kills.push_back(KillSpec{4, KillSite::kBarrier, 1});
  expect_rejected(c, "out of range");
}

TEST(RecoveryConfigTest, LegacyKillFieldsAreValidatedToo) {
  MachineConfig c = base_config(4);
  c.fault.kill_site = KillSite::kRma;
  c.fault.kill_rank = -1;
  expect_rejected(c, "out of range");
}

TEST(RecoveryConfigTest, KillAtZeroIsRejected) {
  // Trigger counts are 1-based; at=0 would schedule a kill that never fires.
  MachineConfig c = base_config(4);
  c.fault.kills.push_back(KillSpec{1, KillSite::kAgree, 0});
  expect_rejected(c, "1-based");
}

TEST(RecoveryConfigTest, KillSiteNoneIsRejected) {
  MachineConfig c = base_config(4);
  c.fault.kills.push_back(KillSpec{1, KillSite::kNone, 1});
  expect_rejected(c, "site=none");
}

TEST(RecoveryConfigTest, ValidPlanConstructs) {
  MachineConfig c = base_config(4);
  c.fault.rma_drop_prob = 0.05;
  c.fault.kills.push_back(KillSpec{2, KillSite::kBarrier, 3});
  c.fault.kills.push_back(KillSpec{0, KillSite::kRma, 1});
  EXPECT_NO_THROW(Machine machine(c));
}

// -- CLI front-end --

MachineConfig from_flags(std::vector<const char*> argv, int n_pes = 4) {
  argv.insert(argv.begin(), "test");
  const CliArgs args(static_cast<int>(argv.size()), argv.data());
  return machine_config_from_cli(args, n_pes);
}

TEST(RecoveryConfigTest, CliZeroTimeoutIsRejected) {
  EXPECT_THROW(from_flags({"--fault-timeout-ms", "0"}), FaultConfigError);
}

TEST(RecoveryConfigTest, CliNegativeTimeoutIsRejected) {
  EXPECT_THROW(from_flags({"--fault-timeout-ms", "-5"}), FaultConfigError);
}

TEST(RecoveryConfigTest, CliOmittedTimeoutDisablesWatchdog) {
  const MachineConfig c = from_flags({});
  EXPECT_EQ(c.fault.barrier_timeout_ms, 0u);
}

TEST(RecoveryConfigTest, CliZeroAgreeTimeoutIsRejected) {
  EXPECT_THROW(from_flags({"--fault-agree-timeout-ms", "0"}),
               FaultConfigError);
}

TEST(RecoveryConfigTest, CliNegativeAgreeTimeoutIsRejected) {
  EXPECT_THROW(from_flags({"--fault-agree-timeout-ms", "-100"}),
               FaultConfigError);
}

TEST(RecoveryConfigTest, CliOmittedAgreeTimeoutKeepsSafetyNet) {
  // agree_timeout_ms = 0 means "no dedicated watchdog": the agreement board
  // falls back to its 60 s safety net rather than failing fast.
  const MachineConfig c = from_flags({});
  EXPECT_EQ(c.fault.agree_timeout_ms, 0u);
}

TEST(RecoveryConfigTest, CliAgreeTimeoutParses) {
  const MachineConfig c = from_flags({"--fault-agree-timeout-ms", "250"});
  EXPECT_EQ(c.fault.agree_timeout_ms, 250u);
}

TEST(RecoveryConfigTest, CliAmoFaultFlagsParse) {
  const MachineConfig c =
      from_flags({"--fault-amo-drop", "0.25", "--fault-amo-delay", "0.1"});
  EXPECT_DOUBLE_EQ(c.fault.amo_drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(c.fault.amo_delay_prob, 0.1);
}

TEST(RecoveryConfigTest, CliKillListParsesAllEntries) {
  const MachineConfig c =
      from_flags({"--fault-kill", "3:barrier:11,7:rma:4,0:agree:1"});
  ASSERT_EQ(c.fault.kills.size(), 3u);
  EXPECT_EQ(c.fault.kills[0].rank, 3);
  EXPECT_EQ(c.fault.kills[0].site, KillSite::kBarrier);
  EXPECT_EQ(c.fault.kills[0].at, 11u);
  EXPECT_EQ(c.fault.kills[1].rank, 7);
  EXPECT_EQ(c.fault.kills[1].site, KillSite::kRma);
  EXPECT_EQ(c.fault.kills[1].at, 4u);
  EXPECT_EQ(c.fault.kills[2].rank, 0);
  EXPECT_EQ(c.fault.kills[2].site, KillSite::kAgree);
  EXPECT_EQ(c.fault.kills[2].at, 1u);
}

TEST(RecoveryConfigTest, CliBadKillSiteIsRejected) {
  EXPECT_THROW(from_flags({"--fault-kill", "2:everywhere:3"}), Error);
}

TEST(RecoveryConfigTest, CliMalformedKillSpecIsRejected) {
  EXPECT_THROW(from_flags({"--fault-kill", "2:barrier"}), Error);
}

TEST(RecoveryConfigTest, CliKillOutOfRangeIsRejectedAtConstruction) {
  // Parsing is permissive about rank range; the Machine constructor is not.
  const MachineConfig c = from_flags({"--fault-kill", "9:barrier:1"});
  expect_rejected(c, "out of range");
}

}  // namespace
}  // namespace xbgas
