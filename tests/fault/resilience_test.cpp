// Machine-level resilience: injected transfer faults are absorbed by the
// bounded retry/backoff path (with a measurable modeled-time cost), retries
// exhaust into a typed error, scripted kills surface as PeFailedError on
// every survivor, and the whole schedule replays deterministically.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

constexpr std::size_t kElems = 64;
constexpr int kRounds = 50;

MachineConfig config(int n_pes, const FaultConfig& fault) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  return c;
}

/// PE 0 repeatedly puts a known pattern into PE 1 and gets it back; returns
/// true when every round-tripped element matched.
void pingpong_body(PeContext& pe, bool* data_ok) {
  xbrtime_init();
  auto* remote = static_cast<std::uint64_t*>(
      xbrtime_malloc(kElems * sizeof(std::uint64_t)));
  std::uint64_t local[kElems];
  std::uint64_t back[kElems];
  bool ok = true;
  if (pe.rank() == 0) {
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < kElems; ++i) {
        local[i] = static_cast<std::uint64_t>(round) * 1000 + i;
      }
      xbr_put(remote, local, kElems, 1, 1);
      std::memset(back, 0, sizeof(back));
      xbr_get(back, remote, kElems, 1, 1);
      for (std::size_t i = 0; i < kElems; ++i) ok &= back[i] == local[i];
    }
  }
  xbrtime_barrier();
  xbrtime_free(remote);
  xbrtime_close();
  if (pe.rank() == 0) *data_ok = ok;
}

TEST(ResilienceTest, RetryAbsorbsTransientDrops) {
  FaultConfig fc;
  fc.seed = 7;
  fc.rma_drop_prob = 0.2;
  fc.max_rma_retries = 12;
  Machine machine(config(2, fc));
  bool data_ok = false;
  machine.run([&](PeContext& pe) { pingpong_body(pe, &data_ok); });
  EXPECT_TRUE(data_ok);

  const CounterRegistry counters = collect_counters(machine);
  EXPECT_GT(counters.get("fault.injected.rma_drop").value(), 0u);
  EXPECT_GT(counters.get("rma.retries").value(), 0u);
  // Every drop was absorbed by exactly one retry (the budget was never
  // exhausted at this rate).
  EXPECT_EQ(counters.get("rma.retries").value(),
            counters.get("fault.injected.rma_drop").value());
}

TEST(ResilienceTest, RetriesAreChargedToModeledTime) {
  bool ok = false;
  Machine clean(config(2, FaultConfig{}));
  clean.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
  const std::uint64_t clean_cycles = clean.max_cycles();

  FaultConfig fc;
  fc.seed = 7;
  fc.rma_drop_prob = 0.2;
  fc.max_rma_retries = 12;
  Machine faulty(config(2, fc));
  faulty.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
  EXPECT_GT(faulty.max_cycles(), clean_cycles)
      << "retransmissions and backoff must show up in simulated time";
}

TEST(ResilienceTest, IdenticalSeedsReplayIdentically) {
  FaultConfig fc;
  fc.seed = 123;
  fc.rma_drop_prob = 0.15;
  fc.rma_delay_prob = 0.1;
  fc.olb_fault_prob = 0.05;
  fc.max_rma_retries = 12;

  auto run_once = [&](std::uint64_t* cycles) {
    Machine machine(config(2, fc));
    bool ok = false;
    machine.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
    EXPECT_TRUE(ok);
    *cycles = machine.max_cycles();
    return collect_counters(machine).json();
  };
  std::uint64_t cycles_a = 0;
  std::uint64_t cycles_b = 0;
  const std::string a = run_once(&cycles_a);
  const std::string b = run_once(&cycles_b);
  EXPECT_EQ(a, b) << "same seed must inject the same faults at the same sites";
  EXPECT_EQ(cycles_a, cycles_b);
}

TEST(ResilienceTest, RetriesExhaustedThrowsTypedComposite) {
  FaultConfig fc;
  fc.seed = 1;
  fc.rma_drop_prob = 1.0;  // every attempt fails
  fc.max_rma_retries = 2;
  Machine machine(config(2, fc));
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* remote = static_cast<std::uint64_t*>(xbrtime_malloc(64));
      std::uint64_t v = 42;
      if (pe.rank() == 0) xbr_put(remote, &v, 1, 1, 1);
      xbrtime_barrier();
      xbrtime_free(remote);
      xbrtime_close();
    });
    FAIL() << "expected retries to exhaust";
  } catch (const SpmdRegionError& e) {
    EXPECT_NE(std::string(e.what()).find("retries exhausted"),
              std::string::npos);
    ASSERT_FALSE(e.failures().empty());
    EXPECT_EQ(e.failures().front().rank, 0);  // the putter is the primary
    EXPECT_FALSE(e.failures().front().secondary);
  }
  EXPECT_FALSE(machine.alive(0));
  EXPECT_TRUE(machine.alive(1));
}

TEST(ResilienceTest, ChecksumTurnsBitflipsIntoRetries) {
  FaultConfig fc;
  fc.seed = 21;
  fc.rma_bitflip_prob = 0.3;
  fc.verify_checksum = true;
  fc.max_rma_retries = 16;
  Machine machine(config(2, fc));
  bool data_ok = false;
  machine.run([&](PeContext& pe) { pingpong_body(pe, &data_ok); });
  EXPECT_TRUE(data_ok) << "verified transfers must deliver correct payloads";

  const CounterRegistry counters = collect_counters(machine);
  EXPECT_GT(counters.get("fault.injected.bitflip").value(), 0u);
  // Every injected flip was detected — none slipped through silently.
  EXPECT_EQ(counters.get("rma.checksum_failures").value(),
            counters.get("fault.injected.bitflip").value());
}

TEST(ResilienceTest, BitflipWithoutChecksumCorruptsSilently) {
  // Documents why verify_checksum exists: without it an injected flip is
  // silent data corruption at the destination.
  FaultConfig fc;
  fc.seed = 3;
  fc.rma_bitflip_prob = 1.0;
  fc.verify_checksum = false;
  Machine machine(config(2, fc));
  bool corrupted = false;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<std::uint64_t*>(xbrtime_malloc(64));
    if (pe.rank() == 0) {
      const std::uint64_t v = 0xDEADBEEFull;
      xbr_put(remote, &v, 1, 1, 1);
    }
    xbrtime_barrier();
    if (pe.rank() == 1) corrupted = *remote != 0xDEADBEEFull;
    xbrtime_barrier();
    xbrtime_free(remote);
    xbrtime_close();
  });
  EXPECT_TRUE(corrupted);
}

TEST(ResilienceTest, DelayFaultsSlowTheClockWithoutRetries) {
  FaultConfig fc;
  fc.seed = 4;
  fc.rma_delay_prob = 1.0;
  fc.delay_cycles = 10000;
  Machine machine(config(2, fc));
  bool ok = false;
  machine.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
  EXPECT_TRUE(ok);
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("fault.injected.rma_delay").value(),
            static_cast<std::uint64_t>(2 * kRounds));  // one per transfer
  EXPECT_EQ(counters.get("rma.retries").value(), 0u);
}

TEST(ResilienceTest, OlbFaultsAreRetried) {
  FaultConfig fc;
  fc.seed = 8;
  fc.olb_fault_prob = 0.25;
  fc.max_rma_retries = 12;
  Machine machine(config(2, fc));
  bool ok = false;
  machine.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
  EXPECT_TRUE(ok);
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_GT(counters.get("fault.injected.olb_fault").value(), 0u);
  EXPECT_EQ(counters.get("rma.retries").value(),
            counters.get("fault.injected.olb_fault").value());
}

TEST(ResilienceTest, ScriptedKillSurfacesAsPeFailedOnSurvivors) {
  FaultConfig fc;
  fc.kill_site = KillSite::kBarrier;
  fc.kill_rank = 2;
  fc.kill_at = 4;
  fc.barrier_timeout_ms = 20000;  // a watchdog turns any regression hang
                                  // into a diagnosed failure
  Machine machine(config(4, fc));
  try {
    machine.run([&](PeContext&) {
      xbrtime_init();
      for (int i = 0; i < 10; ++i) xbrtime_barrier();
      xbrtime_close();
    });
    FAIL() << "expected the scripted kill to propagate";
  } catch (const SpmdRegionError& e) {
    ASSERT_EQ(e.failures().size(), 4u);
    const PeFailure& primary = e.failures().front();
    EXPECT_EQ(primary.rank, 2);
    EXPECT_FALSE(primary.secondary);
    EXPECT_NE(primary.what.find("scripted fault"), std::string::npos);
    // Every survivor reports the same verdict: PE 2 failed.
    for (std::size_t i = 1; i < e.failures().size(); ++i) {
      EXPECT_TRUE(e.failures()[i].secondary);
      EXPECT_NE(e.failures()[i].what.find("PE 2 failed"), std::string::npos);
    }
  }
  EXPECT_EQ(machine.n_alive(), 3);
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{2});
  ASSERT_EQ(machine.failures().size(), 4u);
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("fault.injected.kills").value(), 1u);
  EXPECT_EQ(counters.get("machine.pes_failed").value(), 1u);
}

TEST(ResilienceTest, FaultEventsAppearInTrace) {
  FaultConfig fc;
  fc.seed = 7;
  fc.rma_drop_prob = 0.2;
  fc.max_rma_retries = 12;
  MachineConfig mc = config(2, fc);
  mc.trace.enabled = true;
  Machine machine(mc);
  bool ok = false;
  machine.run([&](PeContext& pe) { pingpong_body(pe, &ok); });
  EXPECT_TRUE(ok);

  int inject_events = 0;
  int retry_events = 0;
  for (const TraceEvent& ev : machine.tracer().ring(0)->snapshot()) {
    inject_events += ev.kind == EventKind::kFaultInject ? 1 : 0;
    retry_events += ev.kind == EventKind::kRmaRetry ? 1 : 0;
  }
  EXPECT_GT(inject_events, 0);
  EXPECT_GT(retry_events, 0);
}

}  // namespace
}  // namespace xbgas
