// FaultInjector unit tests: deterministic replay, stream independence,
// scripted kills, payload corruption, and the checksum helpers.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/checksum.hpp"
#include "fault/injector.hpp"

namespace xbgas {
namespace {

FaultConfig active_config(std::uint64_t seed) {
  FaultConfig fc;
  fc.seed = seed;
  fc.rma_drop_prob = 0.5;
  fc.rma_delay_prob = 0.5;
  fc.rma_bitflip_prob = 0.5;
  fc.olb_fault_prob = 0.5;
  return fc;
}

TEST(BackoffTest, GrowsExponentiallyFromBase) {
  FaultConfig fc;
  fc.backoff_base_cycles = 64;
  EXPECT_EQ(backoff_cycles(fc, 1), 64u);
  EXPECT_EQ(backoff_cycles(fc, 2), 128u);
  EXPECT_EQ(backoff_cycles(fc, 3), 256u);
  EXPECT_EQ(backoff_cycles(fc, 11), 64u << 10);
}

TEST(BackoffTest, SaturatesInsteadOfWrapping) {
  // Regression: `base << (attempt - 1)` overflowed for a large configured
  // base — a shifted-out wait wrapped to a tiny (or zero) backoff exactly
  // when the system was most congested. The fix clamps at 2^63.
  constexpr std::uint64_t kMax = std::uint64_t{1} << 63;
  FaultConfig fc;
  fc.backoff_base_cycles = std::uint64_t{1} << 60;
  EXPECT_EQ(backoff_cycles(fc, 1), std::uint64_t{1} << 60);
  EXPECT_EQ(backoff_cycles(fc, 4), kMax);   // 1<<63: at the cap
  EXPECT_EQ(backoff_cycles(fc, 5), kMax);   // would wrap without the clamp
  EXPECT_EQ(backoff_cycles(fc, 60), kMax);  // shift itself is also clamped
}

TEST(BackoffTest, MonotoneNonDecreasingInAttempt) {
  for (const std::uint64_t base :
       {std::uint64_t{1}, std::uint64_t{64}, std::uint64_t{1} << 40,
        std::uint64_t{1} << 62, ~std::uint64_t{0}}) {
    FaultConfig fc;
    fc.backoff_base_cycles = base;
    std::uint64_t prev = 0;
    for (int attempt = 1; attempt <= 70; ++attempt) {
      const std::uint64_t b = backoff_cycles(fc, attempt);
      EXPECT_GE(b, prev) << "base=" << base << " attempt=" << attempt;
      prev = b;
    }
  }
}

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector inj(FaultConfig{}, 4);
  EXPECT_FALSE(inj.enabled());
  // With zero probability every draw is false and advances nothing.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.draw_rma_drop(0));
    EXPECT_FALSE(inj.draw_olb_fault(3));
  }
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultInjector a(active_config(42), 4);
  FaultInjector b(active_config(42), 4);
  for (int i = 0; i < 1000; ++i) {
    const int rank = i % 4;
    EXPECT_EQ(a.draw_rma_drop(rank), b.draw_rma_drop(rank));
    EXPECT_EQ(a.draw_rma_delay(rank), b.draw_rma_delay(rank));
    EXPECT_EQ(a.draw_rma_bitflip(rank), b.draw_rma_bitflip(rank));
    EXPECT_EQ(a.draw_olb_fault(rank), b.draw_olb_fault(rank));
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(active_config(1), 1);
  FaultInjector b(active_config(2), 1);
  int differing = 0;
  for (int i = 0; i < 256; ++i) {
    differing += a.draw_rma_drop(0) != b.draw_rma_drop(0) ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, RankStreamsAreIndependent) {
  // Rank 1's decision sequence must not depend on how often rank 0 draws —
  // that is what makes placement independent of host thread interleaving.
  FaultInjector quiet(active_config(7), 2);
  std::vector<bool> expected;
  expected.reserve(200);
  for (int i = 0; i < 200; ++i) expected.push_back(quiet.draw_rma_drop(1));

  FaultInjector noisy(active_config(7), 2);
  std::vector<bool> got;
  got.reserve(200);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j <= i % 3; ++j) (void)noisy.draw_rma_drop(0);
    (void)noisy.draw_olb_fault(1);  // different site: separate stream
    got.push_back(noisy.draw_rma_drop(1));
  }
  EXPECT_EQ(expected, got);
}

TEST(FaultInjectorTest, ScriptedKillAtKthBarrier) {
  FaultConfig fc;
  fc.kill_site = KillSite::kBarrier;
  fc.kill_rank = 1;
  fc.kill_at = 3;
  FaultInjector inj(fc, 4);
  EXPECT_TRUE(inj.enabled());

  // Non-victims never trigger, no matter how many arrivals.
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(inj.on_barrier_arrival(0));
    EXPECT_NO_THROW(inj.on_barrier_arrival(2));
  }
  // The victim survives arrivals 1 and 2, dies at 3, and the trigger does
  // not re-fire afterwards.
  EXPECT_NO_THROW(inj.on_barrier_arrival(1));
  EXPECT_NO_THROW(inj.on_barrier_arrival(1));
  try {
    inj.on_barrier_arrival(1);
    FAIL() << "expected PeKilledError at the 3rd barrier arrival";
  } catch (const PeKilledError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_NE(std::string(e.what()).find("barrier #3"), std::string::npos);
  }
  EXPECT_NO_THROW(inj.on_barrier_arrival(1));
  EXPECT_EQ(inj.counters().kills.load(), 1u);
  // RMA issues never trigger a barrier-sited kill.
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(inj.on_rma_issue(1));
}

TEST(FaultInjectorTest, ScriptedKillAtKthRma) {
  FaultConfig fc;
  fc.kill_site = KillSite::kRma;
  fc.kill_rank = 0;
  fc.kill_at = 2;
  FaultInjector inj(fc, 2);
  EXPECT_NO_THROW(inj.on_rma_issue(0));
  EXPECT_THROW(inj.on_rma_issue(0), PeKilledError);
}

TEST(FaultInjectorTest, KillRankOutOfRangeRejected) {
  FaultConfig fc;
  fc.kill_site = KillSite::kBarrier;
  fc.kill_rank = 4;
  EXPECT_THROW(FaultInjector(fc, 4), Error);
}

TEST(FaultInjectorTest, CorruptPayloadFlipsExactlyOneBit) {
  FaultConfig fc = active_config(9);
  FaultInjector inj(fc, 1);
  std::vector<unsigned char> buf(64, 0xA5);
  const std::vector<unsigned char> orig = buf;
  inj.corrupt_payload(0, buf.data(), 8, 8, 1);
  int bits_changed = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(buf[i] ^ orig[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff = static_cast<unsigned char>(diff >> 1);
    }
  }
  EXPECT_EQ(bits_changed, 1);
}

TEST(FaultInjectorTest, CorruptPayloadRespectsStride) {
  // stride 2: only even-indexed elements move, so only their bytes may flip.
  std::vector<unsigned char> buf(8 * 8, 0);
  FaultInjector inj(active_config(11), 1);
  for (int i = 0; i < 50; ++i) inj.corrupt_payload(0, buf.data(), 8, 4, 2);
  for (std::size_t elem = 0; elem < 8; ++elem) {
    const bool moved = elem % 2 == 0;
    bool touched = false;
    for (std::size_t b = 0; b < 8; ++b) touched |= buf[elem * 8 + b] != 0;
    if (!moved) {
      EXPECT_FALSE(touched) << "gap element " << elem << " corrupted";
    }
  }
}

TEST(FaultInjectorTest, AmoSiteNamesResolve) {
  EXPECT_STREQ(fault_site_name(FaultSite::kAmoDrop), "amo_drop");
  EXPECT_STREQ(fault_site_name(FaultSite::kAmoDelay), "amo_delay");
}

TEST(FaultInjectorTest, AmoDrawsDisabledAtZeroProbability) {
  // active_config leaves the AMO sites at 0.0: remote atomics stay
  // fault-free unless explicitly opted in, even with RMA faults armed.
  FaultInjector inj(active_config(3), 2);
  EXPECT_TRUE(inj.enabled());
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(inj.draw_amo_drop(0));
    EXPECT_FALSE(inj.draw_amo_delay(1));
  }
}

TEST(FaultInjectorTest, AmoDrawsAreDeterministicPerSeed) {
  FaultConfig fc = active_config(21);
  fc.amo_drop_prob = 0.5;
  fc.amo_delay_prob = 0.5;
  FaultInjector a(fc, 4);
  FaultInjector b(fc, 4);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    const int rank = i % 4;
    const bool drop = a.draw_amo_drop(rank);
    EXPECT_EQ(drop, b.draw_amo_drop(rank));
    EXPECT_EQ(a.draw_amo_delay(rank), b.draw_amo_delay(rank));
    fired += drop ? 1 : 0;
  }
  EXPECT_GT(fired, 300);  // p=0.5: the stream actually fires
  EXPECT_LT(fired, 700);
}

TEST(FaultInjectorTest, AmoStreamsIndependentOfRmaStreams) {
  // The AMO sites were appended as new streams; draining RMA draws must not
  // shift an AMO sequence (and, regression-style, the pre-existing RMA
  // mapping must not have moved just because AMO probabilities are set).
  FaultConfig fc = active_config(13);
  fc.amo_drop_prob = 0.5;
  FaultInjector quiet(fc, 2);
  std::vector<bool> expected;
  expected.reserve(200);
  for (int i = 0; i < 200; ++i) expected.push_back(quiet.draw_amo_drop(1));

  FaultInjector noisy(fc, 2);
  std::vector<bool> got;
  got.reserve(200);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j <= i % 3; ++j) (void)noisy.draw_rma_drop(1);
    (void)noisy.draw_rma_delay(1);
    (void)noisy.draw_amo_delay(1);  // sibling AMO site: separate stream too
    got.push_back(noisy.draw_amo_drop(1));
  }
  EXPECT_EQ(expected, got);

  FaultConfig rma_only = active_config(13);
  FaultInjector base(rma_only, 2);
  FaultInjector with_amo(fc, 2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(base.draw_rma_drop(0), with_amo.draw_rma_drop(0));
  }
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  std::vector<unsigned char> buf(256, 0x3C);
  const std::uint64_t clean = strided_checksum(buf.data(), 8, 32, 1);
  buf[100] ^= 0x10;
  EXPECT_NE(clean, strided_checksum(buf.data(), 8, 32, 1));
}

TEST(ChecksumTest, StridedCoversOnlyMovedBytes) {
  std::vector<unsigned char> buf(8 * 8, 0x11);
  const std::uint64_t clean = strided_checksum(buf.data(), 8, 4, 2);
  buf[8] ^= 0xFF;  // element 1 is a stride gap: not part of the transfer
  EXPECT_EQ(clean, strided_checksum(buf.data(), 8, 4, 2));
  buf[16] ^= 0x01;  // element 2 is moved
  EXPECT_NE(clean, strided_checksum(buf.data(), 8, 4, 2));
}

TEST(ChecksumTest, StridedMatchesContiguousForStrideOne) {
  std::vector<unsigned char> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 7);
  }
  EXPECT_EQ(strided_checksum(buf.data(), 8, 8, 1), fnv1a(buf.data(), 64));
}

TEST(FaultInjectorTest, ResetCountersKeepsStreamPosition) {
  FaultInjector a(active_config(5), 1);
  FaultInjector b(active_config(5), 1);
  for (int i = 0; i < 100; ++i) (void)a.draw_rma_drop(0);
  for (int i = 0; i < 100; ++i) (void)b.draw_rma_drop(0);
  a.reset_counters();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.draw_rma_drop(0), b.draw_rma_drop(0));
  }
}

}  // namespace
}  // namespace xbgas
