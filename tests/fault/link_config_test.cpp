// Validation of the scripted link/partition fault plan and the kAmo kill
// site: a bad plan is rejected at Machine construction with a typed
// FaultConfigError, an AMO-site kill fires at the victim's k-th remote AMO,
// and the legacy rma site keeps counting AMO issues (superset semantics) so
// pre-existing calibrated kill plans are unaffected by the new site.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "fault/config.hpp"
#include "fault/errors.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr int kPes = 4;

FaultConfig with_link(int a, int b, LinkFaultMode mode, std::uint64_t at,
                      std::uint64_t heal_at = 0) {
  FaultConfig fc;
  LinkSpec l;
  l.a = a;
  l.b = b;
  l.mode = mode;
  l.at = at;
  l.heal_at = heal_at;
  fc.links.push_back(l);
  return fc;
}

FaultConfig with_partition(int lo, int hi, std::uint64_t at,
                           std::uint64_t heal_at = 0) {
  FaultConfig fc;
  PartitionSpec p;
  p.lo = lo;
  p.hi = hi;
  p.at = at;
  p.heal_at = heal_at;
  fc.partitions.push_back(p);
  return fc;
}

TEST(LinkConfigValidationTest, WellFormedPlansPass) {
  EXPECT_NO_THROW(validate_fault_config(
      with_link(0, 3, LinkFaultMode::kDown, 500), kPes));
  EXPECT_NO_THROW(validate_fault_config(
      with_link(2, 1, LinkFaultMode::kDegraded, 10, 900), kPes));
  EXPECT_NO_THROW(validate_fault_config(with_partition(2, 3, 100), kPes));
  EXPECT_NO_THROW(validate_fault_config(with_partition(0, 0, 1, 50), kPes));
}

TEST(LinkConfigValidationTest, LinkEndpointOutOfRange) {
  EXPECT_THROW(validate_fault_config(
                   with_link(0, kPes, LinkFaultMode::kDown, 1), kPes),
               FaultConfigError);
  EXPECT_THROW(validate_fault_config(
                   with_link(-1, 1, LinkFaultMode::kDown, 1), kPes),
               FaultConfigError);
}

TEST(LinkConfigValidationTest, SelfLoopLinkRejected) {
  EXPECT_THROW(
      validate_fault_config(with_link(2, 2, LinkFaultMode::kDown, 1), kPes),
      FaultConfigError);
}

TEST(LinkConfigValidationTest, ActivationAtCycleZeroRejected) {
  EXPECT_THROW(
      validate_fault_config(with_link(0, 1, LinkFaultMode::kDown, 0), kPes),
      FaultConfigError);
  EXPECT_THROW(validate_fault_config(with_partition(0, 1, 0), kPes),
               FaultConfigError);
}

TEST(LinkConfigValidationTest, HealMustFollowActivation) {
  EXPECT_THROW(validate_fault_config(
                   with_link(0, 1, LinkFaultMode::kDown, 100, 100), kPes),
               FaultConfigError);
  EXPECT_THROW(validate_fault_config(
                   with_link(0, 1, LinkFaultMode::kDown, 100, 50), kPes),
               FaultConfigError);
  EXPECT_THROW(validate_fault_config(with_partition(0, 1, 100, 99), kPes),
               FaultConfigError);
}

TEST(LinkConfigValidationTest, PartitionGroupMustBeAProperSubset) {
  // Not a valid range.
  EXPECT_THROW(validate_fault_config(with_partition(3, 1, 10), kPes),
               FaultConfigError);
  EXPECT_THROW(validate_fault_config(with_partition(0, kPes, 10), kPes),
               FaultConfigError);
  // Covering every rank leaves nothing on the other side.
  EXPECT_THROW(validate_fault_config(with_partition(0, kPes - 1, 10), kPes),
               FaultConfigError);
}

TEST(LinkConfigValidationTest, DegradedBetaBelowOneRejected) {
  FaultConfig fc = with_link(0, 1, LinkFaultMode::kDegraded, 1);
  fc.degraded_beta_factor = 0.5;
  EXPECT_THROW(validate_fault_config(fc, kPes), FaultConfigError);
  fc.degraded_beta_factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_fault_config(fc, kPes), FaultConfigError);
  fc.degraded_beta_factor = 1.0;
  EXPECT_NO_THROW(validate_fault_config(fc, kPes));
}

TEST(LinkConfigValidationTest, AmoKillSpecValidatedLikeOtherSites) {
  FaultConfig fc;
  fc.kills.push_back(KillSpec{1, KillSite::kAmo, 3});
  EXPECT_NO_THROW(validate_fault_config(fc, kPes));
  fc.kills[0].rank = kPes;
  EXPECT_THROW(validate_fault_config(fc, kPes), FaultConfigError);
  fc.kills[0].rank = 1;
  fc.kills[0].at = 0;
  EXPECT_THROW(validate_fault_config(fc, kPes), FaultConfigError);
}

// ---------------------------------------------------------------------------
// Behavioral: the kAmo site fires at the victim's k-th remote AMO, and the
// legacy kRma site still counts AMO issues.
// ---------------------------------------------------------------------------

MachineConfig amo_config(const FaultConfig& fault) {
  MachineConfig c;
  c.n_pes = kPes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 256 * 1024};
  c.fault = fault;
  return c;
}

/// Every rank issues 5 remote AMO adds to its right neighbor, then a
/// barrier. With a kill scheduled the barrier is poisoned and survivors
/// unwind with PeFailedError.
void amo_body(PeContext& pe) {
  xbrtime_init();
  auto* counter =
      static_cast<std::uint64_t*>(xbrtime_malloc(sizeof(std::uint64_t)));
  *counter = 0;
  xbrtime_barrier();
  const int right = (pe.rank() + 1) % kPes;
  for (int i = 0; i < 5; ++i) {
    (void)xbr_amo_add<std::uint64_t>(counter, 1, right);
  }
  xbrtime_barrier();
  xbrtime_free(counter);
  xbrtime_close();
}

std::string run_amo_kill(KillSite site) {
  FaultConfig fc;
  fc.kills.push_back(KillSpec{1, site, 3});
  fc.barrier_timeout_ms = 20000;  // turn a regression hang into a diagnosis
  Machine machine(amo_config(fc));
  try {
    machine.run([](PeContext& pe) { amo_body(pe); });
    ADD_FAILURE() << "expected the scripted AMO-site kill to fire";
  } catch (const SpmdRegionError& e) {
    EXPECT_FALSE(e.failures().empty());
    if (!e.failures().empty()) {
      EXPECT_EQ(e.failures().front().rank, 1);
      EXPECT_FALSE(e.failures().front().secondary);
    }
  }
  EXPECT_FALSE(machine.alive(1));
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{1});
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("fault.injected.kills").value(), 1u);
  return counters.json();
}

TEST(AmoKillSiteTest, KthAmoIssueKillsTheVictim) {
  (void)run_amo_kill(KillSite::kAmo);
}

TEST(AmoKillSiteTest, LegacyRmaSiteStillCountsAmoIssues) {
  // Superset semantics: an AMO is a remote issue, so a kill calibrated
  // against the rma trigger sequence fires at the same point whether the
  // victim's traffic is transfers or atomics.
  (void)run_amo_kill(KillSite::kRma);
}

TEST(AmoKillSiteTest, AmoKillScheduleIsDeterministic) {
  const std::string a = run_amo_kill(KillSite::kAmo);
  const std::string b = run_amo_kill(KillSite::kAmo);
  EXPECT_EQ(a, b) << "the same scripted AMO kill must replay bit-identically";
}

}  // namespace
}  // namespace xbgas
