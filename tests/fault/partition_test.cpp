// Partition tolerance end to end (the PR's acceptance scenario):
//
//  * Unreachable-peer escalation — retries exhausted across a scripted-down
//    link become a typed PeUnreachableError naming the peer and the link,
//    and feed the same suspect -> xbr_agree -> xbr_team_shrink machinery as
//    a death: the quorum evicts the unreachable peer and the survivors
//    finish on an all-reachable roster.
//  * Split-brain safety — under a scripted 2-way partition at 64 PEs, only
//    the majority component may decide and shrink; every minority rank
//    unwinds with PartitionedError carrying the majority roster, and the
//    whole run replays bit-identically.
//  * Fail-fast conformance — with a zero retry budget against a dead link,
//    every blocking operation (put, get, amo, write-combined flush,
//    collective, barrier) terminates with a typed error under XbrSan full;
//    nothing hangs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collectives/checkpoint.hpp"
#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"
#include "collectives/shrink.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"
#include "xbrtime/wc.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, const FaultConfig& fault,
                     SanMode san = SanMode::kOff) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  c.san.mode = san;
  return c;
}

FaultConfig down_link(int a, int b, std::uint64_t at = 1,
                      std::uint64_t heal_at = 0) {
  FaultConfig fc;
  LinkSpec l;
  l.a = a;
  l.b = b;
  l.mode = LinkFaultMode::kDown;
  l.at = at;
  l.heal_at = heal_at;
  fc.links.push_back(l);
  // Watchdogs so a regression hangs as a diagnosed failure, not a timeout.
  fc.barrier_timeout_ms = 30000;
  fc.agree_timeout_ms = 30000;
  return fc;
}

std::uint64_t pattern(int rank, std::size_t i) {
  return static_cast<std::uint64_t>(rank) * 1000003 + i;
}

// ---------------------------------------------------------------------------
// Unreachable-peer escalation: one dead link, typed error, quorum eviction.
// ---------------------------------------------------------------------------

struct EscalationDigest {
  int attempts = 0;
  int peer = -1;
  int link_a = -1;
  int link_b = -1;
  std::string site;
  std::vector<std::vector<int>> rosters;     // per world rank (survivors)
  std::vector<int> partitioned;              // flag per world rank
  std::vector<std::vector<int>> majorities;  // per partitioned world rank
  std::vector<int> failed_ranks;
  int n_alive = 0;
  std::string counters;

  bool operator==(const EscalationDigest& o) const {
    return attempts == o.attempts && peer == o.peer && link_a == o.link_a &&
           link_b == o.link_b && site == o.site && rosters == o.rosters &&
           partitioned == o.partitioned && majorities == o.majorities &&
           failed_ranks == o.failed_ranks && n_alive == o.n_alive &&
           counters == o.counters;
  }
};

/// 4 PEs, link (1, 3) scripted down from the start. Rank 1's put to 3
/// exhausts its retries, escalates, and the next agreement evicts rank 3
/// (the larger endpoint); ranks {0, 1, 2} finish on a verified team while
/// rank 3 unwinds with PartitionedError.
EscalationDigest escalation_run() {
  constexpr int kPes = 4;
  constexpr std::size_t kElems = 16;
  Machine machine(config(kPes, down_link(1, 3)));

  EscalationDigest d;
  d.rosters.resize(kPes);
  d.partitioned.assign(kPes, 0);
  d.majorities.resize(kPes);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    std::uint64_t local[kElems] = {};
    const auto me = static_cast<std::size_t>(pe.rank());
    try {
      if (pe.rank() == 1) {
        xbr_put(remote, local, kElems, 1, 3);
        ADD_FAILURE() << "the put crossed a down link and must not land";
      }
      xbrtime_barrier();
      ADD_FAILURE() << "the barrier must be poisoned by the escalation";
    } catch (const PeUnreachableError& e) {
      d.attempts = e.attempts();
      d.peer = e.peer();
      d.link_a = e.link_a();
      d.link_b = e.link_b();
      d.site = e.site();
    } catch (const PeFailedError&) {
      // Poisoned barrier: this rank observed the suspect second-hand.
    }
    try {
      auto team = xbr_team_shrink();
      d.rosters[me] = team->members();
    } catch (const PartitionedError& e) {
      d.partitioned[me] = 1;
      d.majorities[me] = e.majority_ranks();
      throw;  // unwind: acting on local state would split the brain
    }
  });

  d.failed_ranks = machine.failed_ranks();
  d.n_alive = machine.n_alive();
  d.counters = collect_counters(machine).json();
  return d;
}

TEST(UnreachableEscalationTest, TypedErrorFeedsQuorumEviction) {
  const EscalationDigest d = escalation_run();

  // The typed error names the peer, the link, and the exhausted budget.
  EXPECT_EQ(d.attempts, FaultConfig{}.max_rma_retries + 1);
  EXPECT_EQ(d.peer, 3);
  EXPECT_EQ(d.link_a, 1);
  EXPECT_EQ(d.link_b, 3);
  EXPECT_EQ(d.site, "link_down");

  // The quorum evicted the unreachable peer like a dead rank.
  const std::vector<int> survivors{0, 1, 2};
  for (const int wr : survivors) {
    EXPECT_EQ(d.rosters[static_cast<std::size_t>(wr)], survivors)
        << "world rank " << wr;
    EXPECT_EQ(d.partitioned[static_cast<std::size_t>(wr)], 0);
  }
  EXPECT_EQ(d.partitioned[3], 1);
  EXPECT_EQ(d.majorities[3], survivors);
  EXPECT_EQ(d.failed_ranks, std::vector<int>{3});
  EXPECT_EQ(d.n_alive, 3);
}

TEST(UnreachableEscalationTest, EscalationIsDeterministic) {
  const EscalationDigest first = escalation_run();
  const EscalationDigest second = escalation_run();
  EXPECT_TRUE(first == second)
      << "same scripted link fault, different books;\nfirst:\n"
      << first.counters << "\nsecond:\n" << second.counters;
}

TEST(UnreachableEscalationTest, ScriptedHealTurnsEscalationIntoRetries) {
  // The link heals at a modeled cycle the exponential backoff walks past:
  // the bounded retry loop rides over the outage and the transfer lands —
  // no escalation, no eviction, one healed-link transition on the books.
  FaultConfig fc = down_link(0, 1, /*at=*/1, /*heal_at=*/50'000);
  fc.max_rma_retries = 12;
  Machine machine(config(2, fc));
  bool ok = false;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<std::uint64_t*>(xbrtime_malloc(64));
    const std::uint64_t v = 0xFEEDull;
    if (pe.rank() == 0) xbr_put(remote, &v, 1, 1, 1);
    xbrtime_barrier();
    if (pe.rank() == 1) ok = *remote == 0xFEEDull;
    xbrtime_barrier();
    xbrtime_free(remote);
    xbrtime_close();
  });
  EXPECT_TRUE(ok) << "the transfer must land once the link heals";

  const CounterRegistry counters = collect_counters(machine);
  EXPECT_GT(counters.get("rma.retries").value(), 0u);
  EXPECT_GT(counters.get("fault.injected.link_down").value(), 0u);
  EXPECT_EQ(counters.get("net.link.healed").value(), 1u);
  EXPECT_EQ(counters.get("fault.injected.unreachable").value(), 0u);
  EXPECT_EQ(machine.n_alive(), 2);
}

// ---------------------------------------------------------------------------
// Split-brain safety at 64 PEs: majority decides, minority unwinds typed.
// ---------------------------------------------------------------------------

struct QuorumDigest {
  std::vector<std::vector<int>> rosters;     // per world rank
  std::vector<std::uint64_t> reduced;        // per world rank
  std::vector<int> verified;                 // per world rank
  std::vector<int> unreachable_seen;         // flag per world rank
  std::vector<int> partitioned;              // flag per world rank
  std::vector<std::vector<int>> majorities;  // per partitioned world rank
  std::vector<int> failed_ranks;
  int n_alive = 0;
  std::string counters;

  bool operator==(const QuorumDigest& o) const {
    return rosters == o.rosters && reduced == o.reduced &&
           verified == o.verified && unreachable_seen == o.unreachable_seen &&
           partitioned == o.partitioned && majorities == o.majorities &&
           failed_ranks == o.failed_ranks && n_alive == o.n_alive &&
           counters == o.counters;
  }
};

/// 64 PEs on a ring exchange; ranks [48, 63] are split off from the start.
/// The crossing transfers (47 -> 48 and 63 -> 0) escalate, the poisoned
/// world barrier spreads the verdict, and one agreement wave settles both
/// sides: the 48-strong majority shrinks and finishes a golden allreduce,
/// the 16-rank minority unwinds with PartitionedError.
QuorumDigest quorum_run() {
  constexpr int kPes = 64;
  constexpr int kMinorityLo = 48;
  constexpr std::size_t kElems = 64;
  FaultConfig fc;
  PartitionSpec p;
  p.lo = kMinorityLo;
  p.hi = kPes - 1;
  p.at = 1;
  fc.partitions.push_back(p);
  fc.barrier_timeout_ms = 60000;
  fc.agree_timeout_ms = 60000;
  Machine machine(config(kPes, fc));

  QuorumDigest d;
  d.rosters.resize(kPes);
  d.reduced.assign(kPes, 0);
  d.verified.assign(kPes, 0);
  d.unreachable_seen.assign(kPes, 0);
  d.partitioned.assign(kPes, 0);
  d.majorities.resize(kPes);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* data = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    auto* scratch = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) {
      data[i] = pattern(pe.rank(), i);
      scratch[i] = 0;
    }
    xbr_checkpoint();

    const auto me = static_cast<std::size_t>(pe.rank());
    const int right = (pe.rank() + 1) % kPes;
    try {
      // Ring exchange: only 47 -> 48 and 63 -> 0 cross the partition.
      xbr_put(scratch, data, kElems, 1, right);
      xbrtime_barrier();
      ADD_FAILURE() << "rank " << pe.rank()
                    << " passed a barrier two ranks can never reach";
    } catch (const PeUnreachableError&) {
      d.unreachable_seen[me] = 1;
    } catch (const PeFailedError&) {
    }

    try {
      auto team = xbr_team_shrink();
      d.rosters[me] = team->members();

      // The checkpoint must restore cleanly on the survivor side.
      std::memset(data, 0xCD, kElems * sizeof(std::uint64_t));
      xbr_restore(*team);
      bool ok = true;
      for (std::size_t i = 0; i < kElems; ++i) {
        ok &= data[i] == pattern(pe.rank(), i);
      }

      // Quorum-side progress: a golden allreduce over the majority team.
      for (std::size_t i = 0; i < kElems; ++i) {
        data[i] = static_cast<std::uint64_t>(pe.rank() + 1);
      }
      dispatch_reduce_all<OpSum>(scratch, data, kElems, 1, *team);
      std::uint64_t expect = 0;
      for (const int wr : team->members()) {
        expect += static_cast<std::uint64_t>(wr + 1);
      }
      for (std::size_t i = 0; i < kElems; ++i) ok &= scratch[i] == expect;
      d.reduced[me] = scratch[0];
      d.verified[me] = ok ? 1 : 0;
    } catch (const PartitionedError& e) {
      d.partitioned[me] = 1;
      d.majorities[me] = e.majority_ranks();
      throw;  // the minority must not act; unwind out of the region
    }
  });

  d.failed_ranks = machine.failed_ranks();
  d.n_alive = machine.n_alive();
  d.counters = collect_counters(machine).json();
  return d;
}

TEST(PartitionQuorumTest, MajorityShrinksAndMinorityUnwindsTyped) {
  const QuorumDigest d = quorum_run();

  std::vector<int> majority;
  for (int r = 0; r < 48; ++r) majority.push_back(r);
  std::vector<int> minority;
  for (int r = 48; r < 64; ++r) minority.push_back(r);
  std::uint64_t golden = 0;
  for (const int wr : majority) golden += static_cast<std::uint64_t>(wr + 1);

  // Exactly the two ring neighbors facing the cut escalated first-hand.
  EXPECT_EQ(d.unreachable_seen[47], 1);
  EXPECT_EQ(d.unreachable_seen[63], 1);

  for (const int wr : majority) {
    const auto i = static_cast<std::size_t>(wr);
    EXPECT_EQ(d.rosters[i], majority) << "world rank " << wr;
    EXPECT_EQ(d.reduced[i], golden) << "world rank " << wr;
    EXPECT_EQ(d.verified[i], 1) << "world rank " << wr;
    EXPECT_EQ(d.partitioned[i], 0) << "world rank " << wr;
  }
  for (const int wr : minority) {
    const auto i = static_cast<std::size_t>(wr);
    EXPECT_EQ(d.partitioned[i], 1) << "world rank " << wr;
    EXPECT_EQ(d.majorities[i], majority) << "world rank " << wr;
    EXPECT_EQ(d.verified[i], 0) << "world rank " << wr;
  }

  // The region *recovered*: the minority's typed unwinds are acknowledged
  // by the decision, so Machine::run returned normally (or this test would
  // have thrown) and the books show exactly the minority as failed.
  EXPECT_EQ(d.failed_ranks, minority);
  EXPECT_EQ(d.n_alive, 48);
}

TEST(PartitionQuorumTest, PartitionScenarioIsBitIdenticalOnRepeat) {
  const QuorumDigest first = quorum_run();
  const QuorumDigest second = quorum_run();
  EXPECT_TRUE(first == second)
      << "same scripted partition, different books;\nfirst:\n"
      << first.counters << "\nsecond:\n" << second.counters;
}

TEST(PartitionQuorumTest, EvenSplitReachesNoQuorumAndEveryoneUnwinds) {
  // 4 PEs split 2/2: neither side holds a strict majority, so nobody may
  // decide — every rank unwinds with PartitionedError (empty majority) and
  // the region reports the failure instead of letting either half proceed.
  constexpr int kPes = 4;
  FaultConfig fc;
  PartitionSpec p;
  p.lo = 2;
  p.hi = 3;
  p.at = 1;
  fc.partitions.push_back(p);
  fc.barrier_timeout_ms = 30000;
  fc.agree_timeout_ms = 30000;
  Machine machine(config(kPes, fc));

  std::vector<int> unwound(kPes, 0);
  std::vector<int> majority_sizes(kPes, -1);
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* remote = static_cast<std::uint64_t*>(xbrtime_malloc(64));
      std::uint64_t v = 7;
      const auto me = static_cast<std::size_t>(pe.rank());
      try {
        xbr_put(remote, &v, 1, 1, (pe.rank() + 1) % kPes);
        xbrtime_barrier();
      } catch (const RmaRetriesExhaustedError&) {
        // Ranks 1 and 3 face the cut first-hand (includes PeUnreachable).
      } catch (const PeFailedError&) {
      }
      try {
        (void)xbr_team_shrink();
        ADD_FAILURE() << "no side holds a quorum; nobody may shrink";
      } catch (const PartitionedError& e) {
        unwound[me] = 1;
        majority_sizes[me] = static_cast<int>(e.majority_ranks().size());
        throw;
      }
    });
    FAIL() << "with no quorum anywhere the region cannot succeed";
  } catch (const SpmdRegionError& e) {
    EXPECT_EQ(e.failures().size(), 4u);
  }
  for (int r = 0; r < kPes; ++r) {
    EXPECT_EQ(unwound[static_cast<std::size_t>(r)], 1) << "rank " << r;
    EXPECT_EQ(majority_sizes[static_cast<std::size_t>(r)], 0)
        << "rank " << r << ": no majority exists to report";
  }
  EXPECT_EQ(machine.failed_ranks(), (std::vector<int>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Fail-fast conformance: zero retry budget + dead link => typed termination
// for every blocking operation, under XbrSan full. Nothing may hang.
// ---------------------------------------------------------------------------

struct FailFastOutcome {
  bool typed = false;
  int attempts = 0;
  int peer = -1;
  int link_a = -1;
  int link_b = -1;
  std::string site;
  std::uint64_t san_violations = 0;
};

/// Rank 0 runs `op` against the dead link (0, 1) with max_rma_retries = 0;
/// the op must throw PeUnreachableError on the very first attempt.
FailFastOutcome fail_fast_probe(
    const std::function<void(std::uint64_t*)>& op) {
  FaultConfig fc = down_link(0, 1);
  fc.max_rma_retries = 0;
  Machine machine(config(2, fc, SanMode::kFull));
  FailFastOutcome out;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<std::uint64_t*>(
        xbrtime_malloc(16 * sizeof(std::uint64_t)));
    if (pe.rank() == 0) {
      try {
        op(remote);
        ADD_FAILURE() << "the operation crossed a dead link and must throw";
      } catch (const PeUnreachableError& e) {
        out.typed = true;
        out.attempts = e.attempts();
        out.peer = e.peer();
        out.link_a = e.link_a();
        out.link_b = e.link_b();
        out.site = e.site();
      }
    }
  });
  out.san_violations = collect_counters(machine).get("san.violations").value();
  return out;
}

void expect_fail_fast(const FailFastOutcome& out, const std::string& site) {
  EXPECT_TRUE(out.typed);
  EXPECT_EQ(out.attempts, 1) << "a zero budget means exactly one attempt";
  EXPECT_EQ(out.peer, 1);
  EXPECT_EQ(out.link_a, 0);
  EXPECT_EQ(out.link_b, 1);
  EXPECT_EQ(out.site, site);
  EXPECT_EQ(out.san_violations, 0u);
}

TEST(UnreachableFailFastTest, BlockingPutTerminatesTyped) {
  std::uint64_t local[16] = {};
  expect_fail_fast(
      fail_fast_probe([&](std::uint64_t* r) { xbr_put(r, local, 16, 1, 1); }),
      "link_down");
}

TEST(UnreachableFailFastTest, BlockingGetTerminatesTyped) {
  std::uint64_t local[16] = {};
  expect_fail_fast(
      fail_fast_probe([&](std::uint64_t* r) { xbr_get(local, r, 16, 1, 1); }),
      "link_down");
}

TEST(UnreachableFailFastTest, RemoteAmoTerminatesTyped) {
  expect_fail_fast(fail_fast_probe([](std::uint64_t* r) {
                     (void)xbr_amo_add<std::uint64_t>(r, 1, 1);
                   }),
                   "link_down");
}

TEST(UnreachableFailFastTest, WriteCombinedFlushTerminatesTyped) {
  std::uint64_t local[4] = {1, 2, 3, 4};
  expect_fail_fast(fail_fast_probe([&](std::uint64_t* r) {
                     xbr_wc_enable();
                     xbr_put_wc(r, local, 4, 1, 1);
                     xbr_wc_flush();
                   }),
                   "wc_flush");
}

TEST(UnreachableFailFastTest, CollectiveTerminatesTypedOnBothRanks) {
  FaultConfig fc = down_link(0, 1);
  fc.max_rma_retries = 0;
  Machine machine(config(2, fc, SanMode::kFull));
  std::vector<int> terminated(2, 0);
  std::vector<int> typed(2, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* data = static_cast<std::uint64_t*>(
        xbrtime_malloc(8 * sizeof(std::uint64_t)));
    auto* out = static_cast<std::uint64_t*>(
        xbrtime_malloc(8 * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < 8; ++i) data[i] = 1;
    const auto me = static_cast<std::size_t>(pe.rank());
    try {
      dispatch_reduce_all<OpSum>(out, data, 8, 1);
    } catch (const PeUnreachableError&) {
      terminated[me] = 1;
      typed[me] = 1;
    } catch (const PeFailedError&) {
      terminated[me] = 1;
    }
  });
  EXPECT_EQ(terminated, (std::vector<int>{1, 1}))
      << "every participant must terminate, none may hang";
  EXPECT_GE(typed[0] + typed[1], 1)
      << "at least one rank observes the dead link first-hand";
  EXPECT_EQ(collect_counters(machine).get("san.violations").value(), 0u);
}

TEST(UnreachableFailFastTest, BarrierAfterEscalationDoesNotHang) {
  FaultConfig fc = down_link(0, 1);
  fc.max_rma_retries = 0;
  Machine machine(config(2, fc, SanMode::kFull));
  std::vector<int> released(2, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<std::uint64_t*>(xbrtime_malloc(64));
    std::uint64_t v = 9;
    const auto me = static_cast<std::size_t>(pe.rank());
    try {
      if (pe.rank() == 0) xbr_put(remote, &v, 1, 1, 1);
      xbrtime_barrier();
    } catch (const PeUnreachableError&) {
      released[me] = 1;  // rank 0: first-hand escalation
    } catch (const PeFailedError&) {
      released[me] = 1;  // rank 1: poisoned rendezvous, not a hang
    }
  });
  EXPECT_EQ(released, (std::vector<int>{1, 1}));
}

}  // namespace
}  // namespace xbgas
