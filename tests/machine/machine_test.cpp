#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"

namespace xbgas {
namespace {

MachineConfig small_config(int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.layout = MemoryLayout{.private_bytes = 64 * 1024,
                               .shared_bytes = 256 * 1024};
  return config;
}

TEST(MachineTest, ConstructsRequestedPeCount) {
  Machine machine(small_config(4));
  EXPECT_EQ(machine.n_pes(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(machine.pe(r).rank(), r);
    EXPECT_EQ(machine.pe(r).n_pes(), 4);
  }
  EXPECT_THROW(machine.pe(4), Error);
  EXPECT_THROW(machine.pe(-1), Error);
}

TEST(MachineTest, OlbsKnowEveryPeer) {
  Machine machine(small_config(3));
  for (int r = 0; r < 3; ++r) {
    ObjectLookasideBuffer& olb = machine.pe(r).olb();
    EXPECT_EQ(olb.entry_count(), 3u);  // peers include self under rank+1 ID
    for (int peer = 0; peer < 3; ++peer) {
      const OlbEntry* e = olb.peek(object_id_for_pe(peer));
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->pe, peer);
      EXPECT_EQ(e->segment_base, machine.pe(peer).arena().shared_base());
      EXPECT_EQ(e->segment_size, machine.pe(peer).arena().shared_size());
    }
  }
}

TEST(MachineTest, RunExecutesBodyOncePerPe) {
  Machine machine(small_config(4));
  std::atomic<int> count{0};
  std::atomic<int> rank_sum{0};
  machine.run([&](PeContext& pe) {
    count.fetch_add(1);
    rank_sum.fetch_add(pe.rank());
  });
  EXPECT_EQ(count.load(), 4);
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3);
}

TEST(MachineTest, CurrentPeContextBoundDuringRun) {
  Machine machine(small_config(2));
  EXPECT_EQ(current_pe_context(), nullptr);
  machine.run([&](PeContext& pe) {
    EXPECT_EQ(current_pe_context(), &pe);
  });
  EXPECT_EQ(current_pe_context(), nullptr);
}

TEST(MachineTest, ExceptionInOnePePoisonsBarrierAndRethrows) {
  Machine machine(small_config(4));
  EXPECT_THROW(
      machine.run([&](PeContext& pe) {
        if (pe.rank() == 2) {
          throw Error("PE 2 exploded");
        }
        // Everyone else parks in the barrier; poison must release them.
        (void)machine.world_barrier().arrive_and_wait(pe.clock().cycles());
      }),
      Error);
}

TEST(MachineTest, MachineIsReusableAfterClockReset) {
  Machine machine(small_config(2));
  machine.run([&](PeContext& pe) { pe.clock().advance(100); });
  EXPECT_EQ(machine.max_cycles(), 100u);
  machine.reset_time_and_stats();
  EXPECT_EQ(machine.max_cycles(), 0u);
  machine.run([&](PeContext& pe) { pe.clock().advance(5); });
  EXPECT_EQ(machine.max_cycles(), 5u);
}

TEST(MachineTest, ResolveSymmetricMapsSameOffset) {
  Machine machine(small_config(2));
  machine.run([&](PeContext& pe) {
    std::byte* mine = pe.arena().shared_at(128);
    std::byte* theirs = pe.resolve_symmetric(1 - pe.rank(), mine);
    EXPECT_EQ(theirs,
              machine.pe(1 - pe.rank()).arena().shared_at(128));
    EXPECT_EQ(pe.resolve_symmetric(pe.rank(), mine), mine);
  });
}

TEST(MachineTest, ResolveSymmetricRejectsPrivateAddresses) {
  Machine machine(small_config(2));
  machine.run([&](PeContext& pe) {
    std::byte* priv = pe.arena().private_base();
    EXPECT_THROW(pe.resolve_symmetric(1 - pe.rank(), priv), Error);
  });
}

TEST(MachineTest, ValidationSlotsSurviveBarrier) {
  Machine machine(small_config(3));
  machine.run([&](PeContext& pe) {
    machine.validation_slot(pe.rank()) =
        static_cast<std::uint64_t>(pe.rank()) + 100;
    (void)machine.world_barrier().arrive_and_wait(0);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(machine.validation_slot(r),
                static_cast<std::uint64_t>(r) + 100);
    }
    (void)machine.world_barrier().arrive_and_wait(0);
  });
}

TEST(MachineTest, WorldBarrierSynchronizesClocksWithCost) {
  MachineConfig config = small_config(2);
  Machine machine(config);
  machine.run([&](PeContext& pe) {
    pe.clock().advance(pe.rank() == 0 ? 10 : 500);
    const std::uint64_t t =
        machine.world_barrier().arrive_and_wait(pe.clock().cycles());
    pe.clock().set(t);
    // Barrier result: max participant clock + modeled barrier cost.
    EXPECT_EQ(t, 500 + config.net.barrier_cycles(2));
  });
}

TEST(MachineTest, TopologyConfigurable) {
  MachineConfig config = small_config(8);
  config.topology_name = "hypercube";
  Machine machine(config);
  EXPECT_EQ(machine.network().topology().name(), "hypercube");
  EXPECT_THROW(
      [] {
        MachineConfig bad = small_config(6);
        bad.topology_name = "hypercube";  // 6 is not a power of two
        return Machine(bad);
      }(),
      Error);
}

TEST(MachineTest, RejectsZeroPes) {
  EXPECT_THROW(Machine(small_config(0)), Error);
}

}  // namespace
}  // namespace xbgas
