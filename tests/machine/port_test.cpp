#include "machine/port.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "machine/machine.hpp"

namespace xbgas {
namespace {

MachineConfig config2() {
  MachineConfig config;
  config.n_pes = 2;
  config.layout = MemoryLayout{.private_bytes = 4096, .shared_bytes = 8192};
  return config;
}

TEST(MachinePortTest, LocalLoadStoreHitArena) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    MachinePort& port = pe.port();
    (void)port.store(kLocalObjectId, 64, 8, 0xABCD1234u);
    std::uint64_t v = 0;
    (void)port.load(kLocalObjectId, 64, 8, &v);
    EXPECT_EQ(v, 0xABCD1234u);
    // The bytes really live in the arena.
    std::uint64_t raw = 0;
    std::memcpy(&raw, pe.arena().base() + 64, 8);
    EXPECT_EQ(raw, 0xABCD1234u);
  });
}

TEST(MachinePortTest, LocalCostComesFromCacheModel) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    MachinePort& port = pe.port();
    std::uint64_t v = 0;
    const auto cold = port.load(kLocalObjectId, 256, 8, &v);
    const auto warm = port.load(kLocalObjectId, 256, 8, &v);
    EXPECT_GT(cold.cycles, warm.cycles);
    EXPECT_EQ(warm.cycles, pe.cache().config().costs.l1_hit_cycles);
  });
}

TEST(MachinePortTest, RemoteStoreLandsInPeerSharedSegment) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    MachinePort& port = pe.port();
    // Address = private_bytes + 128 => shared offset 128 on the peer.
    const std::uint64_t addr = 4096 + 128;
    (void)port.store(object_id_for_pe(1), addr, 8, 0x5555AAAA5555AAAA);
    std::uint64_t raw = 0;
    std::memcpy(&raw, machine.pe(1).arena().shared_at(128), 8);
    EXPECT_EQ(raw, 0x5555AAAA5555AAAAu);
  });
}

TEST(MachinePortTest, RemoteLoadReadsPeer) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    const std::uint64_t v = 0x1234567890ABCDEF;
    std::memcpy(machine.pe(1).arena().shared_at(512), &v, 8);
    std::uint64_t got = 0;
    (void)pe.port().load(object_id_for_pe(1), 4096 + 512, 8, &got);
    EXPECT_EQ(got, v);
  });
}

TEST(MachinePortTest, RemoteCostsComeFromNetworkModel) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    const auto get = pe.port().load(object_id_for_pe(1), 4096, 8, &v);
    const auto put = pe.port().store(object_id_for_pe(1), 4096, 8, v);
    EXPECT_EQ(get.cycles, machine.network().get_cost(0, 1, 8));
    EXPECT_EQ(put.cycles, machine.network().put_cost(0, 1, 8));
  });
  const NetTotals totals = machine.network().totals();
  EXPECT_EQ(totals.gets, 1u);
  EXPECT_EQ(totals.puts, 1u);
}

TEST(MachinePortTest, RemoteAccessToPrivateSegmentRejected) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    EXPECT_THROW((void)pe.port().load(object_id_for_pe(1), 100, 8, &v),
                 Error);
  });
}

TEST(MachinePortTest, RemoteAccessPastSegmentRejected) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    EXPECT_THROW(
        (void)pe.port().load(object_id_for_pe(1), 4096 + 8192, 8, &v), Error);
  });
}

TEST(MachinePortTest, MisalignedAccessRejected) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    EXPECT_THROW((void)pe.port().load(kLocalObjectId, 3, 8, &v), Error);
    EXPECT_THROW((void)pe.port().store(kLocalObjectId, 2, 4, 0), Error);
  });
}

TEST(MachinePortTest, UnknownObjectIdIsOlbMiss) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    EXPECT_THROW((void)pe.port().load(99, 4096, 8, &v), Error);
    EXPECT_EQ(pe.olb().stats().misses, 1u);
  });
}

TEST(MachinePortTest, LocalOutOfBoundsRejected) {
  Machine machine(config2());
  machine.run([&](PeContext& pe) {
    if (pe.rank() != 0) return;
    std::uint64_t v = 0;
    EXPECT_THROW(
        (void)pe.port().load(kLocalObjectId, 4096 + 8192, 8, &v), Error);
  });
}

}  // namespace
}  // namespace xbgas
