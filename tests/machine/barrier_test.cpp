#include "machine/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace xbgas {
namespace {

TEST(BarrierTest, SingleParticipantPassesThrough) {
  ClockSyncBarrier barrier(1);
  EXPECT_EQ(barrier.arrive_and_wait(42), 42u);
  EXPECT_EQ(barrier.arrive_and_wait(7), 7u);
}

TEST(BarrierTest, AllParticipantsGetMaxClock) {
  constexpr int kN = 4;
  ClockSyncBarrier barrier(kN);
  std::vector<std::uint64_t> results(kN);
  std::vector<std::thread> threads;
  for (int i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          barrier.arrive_and_wait(static_cast<std::uint64_t>(i) * 100);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto r : results) EXPECT_EQ(r, 300u);
}

TEST(BarrierTest, ReconcileCallbackShapesResult) {
  ClockSyncBarrier barrier(2, [](std::uint64_t max_cycles, int n) {
    return max_cycles + static_cast<std::uint64_t>(n) * 10;
  });
  std::uint64_t r1 = 0, r2 = 0;
  std::thread t1([&] { r1 = barrier.arrive_and_wait(5); });
  std::thread t2([&] { r2 = barrier.arrive_and_wait(50); });
  t1.join();
  t2.join();
  EXPECT_EQ(r1, 70u);
  EXPECT_EQ(r2, 70u);
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  constexpr int kN = 3;
  constexpr int kRounds = 50;
  ClockSyncBarrier barrier(kN);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kN; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        (void)barrier.arrive_and_wait(static_cast<std::uint64_t>(round));
        // After every barrier, all kN increments of this round are visible.
        EXPECT_GE(counter.load(), (round + 1) * kN);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), kN * kRounds);
}

TEST(BarrierTest, MonotoneClockAcrossRounds) {
  ClockSyncBarrier barrier(2);
  std::vector<std::uint64_t> seen;
  std::thread t1([&] {
    std::uint64_t c = 0;
    for (int i = 0; i < 10; ++i) {
      c = barrier.arrive_and_wait(c + 5);
      seen.push_back(c);
    }
  });
  std::thread t2([&] {
    std::uint64_t c = 0;
    for (int i = 0; i < 10; ++i) c = barrier.arrive_and_wait(c + 3);
  });
  t1.join();
  t2.join();
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
}

TEST(BarrierTest, PoisonWakesWaiters) {
  ClockSyncBarrier barrier(2);
  std::thread waiter([&] {
    EXPECT_THROW(barrier.arrive_and_wait(0), Error);
  });
  // Give the waiter time to park, then poison.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  barrier.poison();
  waiter.join();
}

TEST(BarrierTest, PoisonedBarrierRejectsNewArrivals) {
  ClockSyncBarrier barrier(2);
  barrier.poison();
  EXPECT_TRUE(barrier.poisoned());
  EXPECT_THROW(barrier.arrive_and_wait(0), Error);
}

TEST(BarrierTest, RejectsZeroParticipants) {
  EXPECT_THROW(ClockSyncBarrier(0), Error);
}

}  // namespace
}  // namespace xbgas
