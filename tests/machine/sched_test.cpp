// FiberScheduler unit suite: the N:M execution substrate under Machine::run
// (docs/SCALING.md). Locks down the scheduler invariants the rest of the
// stack relies on — single-worker determinism (round-robin fairness), no
// lost wakeups for poll-based waiters, exception capture across context
// switches, and that seeded yield injection perturbs the host schedule
// without perturbing simulated time.

#include "machine/fiber.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "machine/machine.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

SchedConfig single_worker() {
  SchedConfig c;
  c.workers = 1;
  return c;
}

TEST(SchedTest, RunsEveryFiberToCompletion) {
  FiberScheduler sched(SchedConfig{}, 32);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    sched.spawn([&done] { done.fetch_add(1); }, nullptr);
  }
  sched.run();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(sched.stats().fibers, 32u);
  EXPECT_EQ(sched.stats().regions, 1u);
  EXPECT_GE(sched.stats().switches, 32u);
}

TEST(SchedTest, SingleWorkerYieldOrderIsRoundRobin) {
  // One worker + FIFO ready queue = strict round-robin: the interleaving is
  // fully deterministic, which is what makes single-core runs reproducible.
  FiberScheduler sched(single_worker(), 3);
  std::vector<int> order;  // single worker: no concurrent writers
  for (int id = 0; id < 3; ++id) {
    sched.spawn([&order, id] {
      for (int slice = 0; slice < 3; ++slice) {
        order.push_back(id);
        FiberScheduler::yield();
      }
    }, nullptr);
  }
  sched.run();
  const std::vector<int> expect{0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(order, expect);
}

TEST(SchedTest, PollWaitersSeeProgressNoLostWakeups) {
  // A dependency chain longer than the worker pool: fiber i may only finish
  // after fiber i-1 bumped the token. Parked fibers are re-run by
  // construction (no wait list, no wakeup to lose), so this must complete
  // even with every fiber multiplexed onto one worker.
  constexpr int kN = 64;
  FiberScheduler sched(single_worker(), kN);
  std::atomic<int> token{0};
  // Spawned in REVERSE dependency order: the first kN-1 fibers all park
  // before the one that can make progress even gets a slice.
  for (int id = kN - 1; id >= 0; --id) {
    sched.spawn([&token, id] {
      while (token.load(std::memory_order_acquire) != id) {
        FiberScheduler::yield_waiting();
      }
      token.store(id + 1, std::memory_order_release);
    }, nullptr);
  }
  sched.run();
  EXPECT_EQ(token.load(), kN);
  EXPECT_GT(sched.stats().yields_waiting, 0u);
}

TEST(SchedTest, ReverseChainCompletesUnderFewWorkers) {
  // Worst case for a blocking implementation: the fiber everyone waits on
  // is spawned LAST, behind kN-1 already-parked waiters. If any waiter held
  // its worker while waiting, the releasing fiber could never run.
  constexpr int kN = 48;
  SchedConfig cfg;
  cfg.workers = 2;
  FiberScheduler sched(cfg, kN);
  std::atomic<bool> release{false};
  std::atomic<int> finished{0};
  for (int id = 0; id < kN - 1; ++id) {
    sched.spawn([&] {
      while (!release.load(std::memory_order_acquire)) {
        FiberScheduler::yield_waiting();
      }
      finished.fetch_add(1);
    }, nullptr);
  }
  sched.spawn([&] { release.store(true, std::memory_order_release); },
              nullptr);
  sched.run();
  EXPECT_EQ(finished.load(), kN - 1);
}

TEST(SchedTest, UserDataAndOnFiberReflectTheCallingFiber) {
  EXPECT_FALSE(FiberScheduler::on_fiber());
  EXPECT_EQ(FiberScheduler::current_user_data(), nullptr);
  int a = 0, b = 0;
  FiberScheduler sched(single_worker(), 2);
  void* seen_a = nullptr;
  void* seen_b = nullptr;
  sched.spawn([&] {
    EXPECT_TRUE(FiberScheduler::on_fiber());
    FiberScheduler::yield();
    seen_a = FiberScheduler::current_user_data();  // survives migration
  }, &a);
  sched.spawn([&] { seen_b = FiberScheduler::current_user_data(); }, &b);
  sched.run();
  EXPECT_EQ(seen_a, &a);
  EXPECT_EQ(seen_b, &b);
  EXPECT_FALSE(FiberScheduler::on_fiber());
}

TEST(SchedTest, FiberExceptionIsRethrownAfterAllFibersStop) {
  FiberScheduler sched(single_worker(), 3);
  std::atomic<int> completed{0};
  sched.spawn([] { throw std::runtime_error("fiber boom"); }, nullptr);
  sched.spawn([&completed] { completed.fetch_add(1); }, nullptr);
  sched.spawn([&completed] { completed.fetch_add(1); }, nullptr);
  EXPECT_THROW(sched.run(), std::runtime_error);
  // The failure must not strand the other fibers: run() drains everything
  // first, then rethrows.
  EXPECT_EQ(completed.load(), 2);
}

TEST(SchedTest, RejectsUndersizedStacks) {
  SchedConfig cfg;
  cfg.stack_bytes = 4 * 1024;
  EXPECT_THROW(FiberScheduler(cfg, 1), Error);
}

// -- Machine-level behavior of the two execution models --

MachineConfig small_machine(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  return c;
}

/// A workload with RMA traffic (cooperative poll points) and barriers.
/// Returns per-rank neighbor values so callers can assert on data too.
void ring_workload(PeContext& pe, std::vector<std::uint64_t>& out) {
  xbrtime_init();
  auto* slot = static_cast<std::uint64_t*>(
      xbrtime_malloc(sizeof(std::uint64_t)));
  const int n = pe.n_pes();
  const int right = (pe.rank() + 1) % n;
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(pe.rank() * 1000 + round);
    xbr_put(slot, &v, 1, 1, right);
    xbrtime_barrier();
    out[static_cast<std::size_t>(pe.rank())] = *slot;
    xbrtime_barrier();
  }
  xbrtime_free(slot);
  xbrtime_close();
}

TEST(SchedMachineTest, FiberAndThreadModesAgreeOnTimeAndData) {
  std::uint64_t cycles[2];
  std::vector<std::uint64_t> data[2];
  const char* modes[2] = {"fibers", "threads"};
  for (int m = 0; m < 2; ++m) {
    MachineConfig cfg = small_machine(6);
    cfg.sched.mode = modes[m];
    Machine machine(cfg);
    data[m].assign(6, 0);
    machine.run([&](PeContext& pe) { ring_workload(pe, data[m]); });
    cycles[m] = machine.max_cycles();
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(data[0], data[1]);
}

TEST(SchedMachineTest, YieldInjectionShakesScheduleNotSimulatedTime) {
  // Any schedule a random yield pattern can produce must complete with
  // bit-identical simulated time and data: simulated time depends only on
  // the modeled machine, never on host interleaving.
  std::uint64_t base_cycles = 0;
  std::vector<std::uint64_t> base_data(8, 0);
  {
    Machine machine(small_machine(8));
    machine.run([&](PeContext& pe) { ring_workload(pe, base_data); });
    base_cycles = machine.max_cycles();
  }
  for (const std::uint64_t seed : {1u, 99u}) {
    MachineConfig cfg = small_machine(8);
    cfg.sched.yield_inject_prob = 0.5;
    cfg.sched.yield_inject_seed = seed;
    Machine machine(cfg);
    std::vector<std::uint64_t> data(8, 0);
    machine.run([&](PeContext& pe) { ring_workload(pe, data); });
    EXPECT_EQ(machine.max_cycles(), base_cycles) << "seed " << seed;
    EXPECT_EQ(data, base_data) << "seed " << seed;
    EXPECT_GT(machine.sched_stats().injected_yields, 0u) << "seed " << seed;
  }
}

TEST(SchedMachineTest, StatsAccumulateAcrossRegions) {
  Machine machine(small_machine(4));
  machine.run([](PeContext&) {});
  machine.run([](PeContext&) {});
  const SchedStats s = machine.sched_stats();
  EXPECT_EQ(s.regions, 2u);
  EXPECT_EQ(s.fibers, 8u);
  EXPECT_GE(s.workers, 1u);
  EXPECT_GE(s.switches, 8u);
}

TEST(SchedMachineTest, RejectsUnknownMode) {
  MachineConfig cfg = small_machine(2);
  cfg.sched.mode = "green-threads";
  Machine machine(cfg);
  EXPECT_THROW(machine.run([](PeContext&) {}), Error);
}

TEST(SchedMachineTest, CurrentPeContextResolvesThroughFibers) {
  Machine machine(small_machine(4));
  EXPECT_EQ(current_pe_context(), nullptr);
  std::atomic<int> matched{0};
  machine.run([&](PeContext& pe) {
    if (current_pe_context() == &pe) matched.fetch_add(1);
    FiberScheduler::yield();  // survive a scheduling boundary
    if (current_pe_context() == &pe) matched.fetch_add(1);
  });
  EXPECT_EQ(matched.load(), 8);
  EXPECT_EQ(current_pe_context(), nullptr);
}

}  // namespace
}  // namespace xbgas
