// Barrier poison semantics: typed causes, late registration after a PE
// death, Team barrier churn racing a crash, and the watchdog timeout path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "collectives/team.hpp"
#include "machine/machine.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"

namespace xbgas {
namespace {

MachineConfig small_config(int n_pes, std::uint64_t barrier_timeout_ms = 0) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 256 * 1024};
  c.fault.barrier_timeout_ms = barrier_timeout_ms;
  return c;
}

TEST(BarrierPoisonTest, GenericPoisonThrowsPlainError) {
  ClockSyncBarrier barrier(2);
  barrier.poison();
  try {
    barrier.arrive_and_wait(0);
    FAIL() << "poisoned barrier must throw";
  } catch (const PeFailedError&) {
    FAIL() << "generic poison must not masquerade as a PE failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos);
  }
}

TEST(BarrierPoisonTest, TypedPoisonThrowsPeFailedWithRank) {
  ClockSyncBarrier barrier(2);
  BarrierPoison info;
  info.failed_rank = 3;
  info.reason = "PE 3 failed (boom); surviving PEs fail fast";
  barrier.poison(std::move(info));
  try {
    barrier.arrive_and_wait(0);
    FAIL() << "poisoned barrier must throw";
  } catch (const PeFailedError& e) {
    EXPECT_EQ(e.failed_rank(), 3);
    EXPECT_NE(std::string(e.what()).find("PE 3"), std::string::npos);
  }
}

TEST(BarrierPoisonTest, FirstPoisonCauseWins) {
  ClockSyncBarrier barrier(2);
  BarrierPoison first;
  first.failed_rank = 1;
  first.reason = "PE 1 failed (first)";
  barrier.poison(first);
  BarrierPoison second;
  second.failed_rank = 2;
  second.reason = "PE 2 failed (second)";
  barrier.poison(second);
  try {
    barrier.arrive_and_wait(0);
    FAIL() << "poisoned barrier must throw";
  } catch (const PeFailedError& e) {
    EXPECT_EQ(e.failed_rank(), 1);
  }
}

TEST(BarrierPoisonTest, LateRegistrationAfterFailureIsPoisonedWithCause) {
  Machine machine(small_config(2));
  EXPECT_THROW(machine.run([](PeContext& pe) {
                 if (pe.rank() == 0) throw Error("injected failure");
               }),
               SpmdRegionError);

  // A barrier born after the region failed inherits the first failure's
  // cause, so anyone who waits on it learns *which* PE died.
  ClockSyncBarrier late(2);
  machine.register_barrier(&late);
  EXPECT_TRUE(late.poisoned());
  try {
    late.arrive_and_wait(0);
    FAIL() << "late-registered barrier must be poisoned";
  } catch (const PeFailedError& e) {
    EXPECT_EQ(e.failed_rank(), 0);
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos);
  }
  machine.unregister_barrier(&late);
}

TEST(BarrierPoisonTest, TeamChurnRacingPeDeathNeverDeadlocks) {
  // PEs 0 and 2 repeatedly create/destroy a team (register/unregister churn
  // on the machine's barrier list) while PE 1 dies at a random point. The
  // survivors must always unwind — with PeFailedError naming rank 1 when
  // the poison lands inside a team barrier.
  for (int round = 0; round < 8; ++round) {
    Machine machine(small_config(3));
    std::atomic<int> team_barriers_survived{0};
    try {
      machine.run([&](PeContext& pe) {
        xbrtime_init();
        if (pe.rank() == 1) {
          // Die somewhere inside the survivors' churn loop.
          std::this_thread::sleep_for(std::chrono::microseconds(round * 300));
          xbrtime_close();
          throw Error("injected failure on rank 1");
        }
        for (int i = 0; i < 50; ++i) {
          Team team(0, 2, 2);  // PEs {0, 2}
          team.barrier();
          team_barriers_survived.fetch_add(1, std::memory_order_relaxed);
        }
        xbrtime_close();
      });
      FAIL() << "rank 1's failure must propagate out of run()";
    } catch (const SpmdRegionError& e) {
      ASSERT_FALSE(e.failures().empty());
      EXPECT_EQ(e.failures().front().rank, 1);
      for (const PeFailure& f : e.failures()) {
        if (f.rank == 1) continue;
        EXPECT_TRUE(f.secondary);
        EXPECT_NE(f.what.find("PE 1 failed"), std::string::npos);
      }
    }
    EXPECT_FALSE(machine.alive(1));
  }
}

TEST(BarrierPoisonTest, WatchdogTimeoutNamesArrivedAndMissingRanks) {
  // PE 1 never arrives at the world barrier; PE 0's watchdog must convert
  // the hang into a BarrierTimeoutError that names both sides.
  Machine machine(small_config(2, /*barrier_timeout_ms=*/200));
  try {
    machine.run([](PeContext& pe) {
      if (pe.rank() == 0) {
        pe.machine().world_barrier().arrive_and_wait(0);
      }
      // PE 1 returns without arriving.
    });
    FAIL() << "watchdog must fire";
  } catch (const SpmdRegionError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
    ASSERT_FALSE(e.failures().empty());
    EXPECT_EQ(e.failures().front().rank, 0);
    EXPECT_NE(e.failures().front().what.find("arrived ranks [0]"),
              std::string::npos);
    EXPECT_NE(e.failures().front().what.find("missing ranks [1]"),
              std::string::npos);
  }
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("barrier.timeouts").value(), 1u);
}

TEST(BarrierPoisonTest, WatchdogTimeoutThrowsTypedErrorDirectly) {
  // Outside a Machine, the watchdog still produces the typed error with the
  // arrived/missing rosters (non-PE threads record rank -1).
  ClockSyncBarrier barrier(2, {}, /*watchdog_ms=*/100, {0, 1});
  try {
    barrier.arrive_and_wait(0);
    FAIL() << "watchdog must fire";
  } catch (const BarrierTimeoutError& e) {
    EXPECT_EQ(e.missing_ranks(), (std::vector<int>{0, 1}));
    EXPECT_EQ(e.arrived_ranks(), (std::vector<int>{-1}));
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
  EXPECT_TRUE(barrier.poisoned());
}

TEST(BarrierPoisonTest, WatchdogDoesNotFireWhenAllArrive) {
  ClockSyncBarrier barrier(2, {}, /*watchdog_ms=*/5000);
  std::uint64_t other = 0;
  std::thread peer([&] { other = barrier.arrive_and_wait(7); });
  const std::uint64_t mine = barrier.arrive_and_wait(3);
  peer.join();
  EXPECT_EQ(mine, 7u);
  EXPECT_EQ(other, 7u);
  EXPECT_FALSE(barrier.poisoned());
}

}  // namespace
}  // namespace xbgas
