// xbr_checkpoint / xbr_restore — heap snapshot round-trips, versioning,
// staging exclusion, and deterministic orphan re-sharding after a death.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "collectives/checkpoint.hpp"
#include "collectives/shrink.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr std::size_t kElems = 64;

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  return c;
}

std::uint64_t pattern(int rank, std::size_t i) {
  return static_cast<std::uint64_t>(rank) * 100000 + i;
}

TEST(CheckpointTest, RoundTripRestoresScribbledData) {
  constexpr int kPes = 4;
  Machine machine(config(kPes));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) buf[i] = pattern(pe.rank(), i);

    const std::uint64_t v1 = xbr_checkpoint();
    EXPECT_EQ(v1, 1u);

    std::memset(buf, 0xAB, kElems * sizeof(std::uint64_t));  // simulate loss
    const RestoreReport rep = xbr_restore();
    EXPECT_EQ(rep.version, 1u);
    EXPECT_EQ(rep.restored_bytes, kElems * sizeof(std::uint64_t));
    EXPECT_TRUE(rep.orphans.empty());

    bool good = true;
    for (std::size_t i = 0; i < kElems; ++i) {
      good &= buf[i] == pattern(pe.rank(), i);
    }
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;

    EXPECT_EQ(xbr_checkpoint(), 2u);  // versions advance per checkpoint
    xbrtime_free(buf);
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);

  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.checkpoints").value(), 2u);
  EXPECT_EQ(counters.get("recovery.restores").value(), 1u);
  EXPECT_EQ(counters.get("recovery.checkpointed_bytes").value(),
            2u * kPes * kElems * sizeof(std::uint64_t));
  EXPECT_EQ(counters.get("recovery.restored_bytes").value(),
            static_cast<std::uint64_t>(kPes) * kElems * sizeof(std::uint64_t));
}

TEST(CheckpointTest, StagingRegionIsExcludedFromSnapshots) {
  Machine machine(config(2));
  machine.run([&](PeContext&) {
    xbrtime_init();  // allocates only the staging region
    EXPECT_EQ(xbr_checkpoint(), 1u);
    xbrtime_close();
  });
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.checkpoints").value(), 1u);
  EXPECT_EQ(counters.get("recovery.checkpointed_bytes").value(), 0u)
      << "the runtime's staging scratch must not be snapshotted";
}

TEST(CheckpointTest, OrphanedSnapshotIsReShardedDeterministically) {
  constexpr int kPes = 6;
  FaultConfig fc;
  // Arrivals: init = 3, buf malloc = 2 (#4, #5), checkpoint = 2 (#6, #7);
  // the explicit barrier #8 is the kill point.
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 8});
  Machine machine(config(kPes, fc));
  std::vector<int> own_ok(kPes, 0);
  std::vector<int> orphan_count(kPes, -1);
  std::vector<int> orphan_ok(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) buf[i] = pattern(pe.rank(), i);
    xbr_checkpoint();
    try {
      xbrtime_barrier();  // rank 2 dies
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      std::memset(buf, 0, kElems * sizeof(std::uint64_t));
      const RestoreReport rep = xbr_restore(*team);

      const auto me = static_cast<std::size_t>(pe.rank());
      bool good = true;
      for (std::size_t i = 0; i < kElems; ++i) {
        good &= buf[i] == pattern(pe.rank(), i);
      }
      own_ok[me] = good ? 1 : 0;
      orphan_count[me] = static_cast<int>(rep.orphans.size());
      if (rep.orphans.size() == 1) {
        const OrphanShard& shard = rep.orphans.front();
        bool match = shard.world_rank == 2 &&
                     shard.data.size() == kElems * sizeof(std::uint64_t);
        if (match) {
          std::vector<std::uint64_t> vals(kElems);
          std::memcpy(vals.data(), shard.data.data(), shard.data.size());
          for (std::size_t i = 0; i < kElems; ++i) {
            match &= vals[i] == pattern(2, i);
          }
        }
        orphan_ok[me] = match ? 1 : 0;
      }
    }
  });

  // Orphan 0 (rank 2's snapshot) deals onto team rank 0 == world rank 0.
  for (const int wr : {0, 1, 3, 4, 5}) {
    EXPECT_EQ(own_ok[static_cast<std::size_t>(wr)], 1)
        << "world rank " << wr << " must restore its own snapshot";
    EXPECT_EQ(orphan_count[static_cast<std::size_t>(wr)], wr == 0 ? 1 : 0);
  }
  EXPECT_EQ(orphan_ok[0], 1) << "rank 2's data must arrive intact on rank 0";

  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.orphaned_bytes").value(),
            kElems * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace xbgas
