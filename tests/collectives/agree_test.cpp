// xbr_agree — fault-tolerant agreement: bitwise-identical decisions on
// every survivor, leader takeover when the leader dies mid-agreement, and a
// typed timeout when a participant neither contributes nor fails.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "collectives/agree.hpp"
#include "collectives/shrink.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 512 * 1024};
  c.fault = fault;
  return c;
}

TEST(AgreeTest, HealthyAgreementIsIdenticalEverywhere) {
  constexpr int kPes = 4;
  Machine machine(config(kPes));
  std::vector<AgreeResult> results(kPes);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    // Each rank clears its own bit; AND-agreement must clear all of them.
    const std::uint64_t flag = ~(std::uint64_t{1} << pe.rank());
    results[static_cast<std::size_t>(pe.rank())] = xbr_agree(flag);
    xbrtime_close();
  });

  const std::vector<int> everyone{0, 1, 2, 3};
  for (const AgreeResult& r : results) {
    EXPECT_EQ(r.roster, everyone);
    EXPECT_EQ(r.flag, ~std::uint64_t{0xF});
    EXPECT_EQ(r.epoch, 1u);
  }
  EXPECT_EQ(machine.recovery().epoch(), 1u);
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.agreements").value(), 1u);
}

TEST(AgreeTest, AgreementExcludesDeadRankAndRegionRecovers) {
  constexpr int kPes = 4;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});  // first post-init
  Machine machine(config(kPes, fc));
  std::vector<std::vector<int>> rosters(kPes);

  // Must NOT throw: every failure is an acknowledged primary.
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    try {
      xbrtime_barrier();  // barrier #4: rank 2 dies, survivors unwind
      FAIL() << "world barrier should have been poisoned";
    } catch (const PeFailedError& e) {
      EXPECT_EQ(e.failed_rank(), 2);
      const AgreeResult ag = xbr_agree(~std::uint64_t{0});
      rosters[static_cast<std::size_t>(pe.rank())] = ag.roster;
    }
    // No xbrtime_close: the world barrier stays poisoned after a death.
  });

  const std::vector<int> survivors{0, 1, 3};
  for (const int r : survivors) {
    EXPECT_EQ(rosters[static_cast<std::size_t>(r)], survivors);
  }
  EXPECT_EQ(machine.n_alive(), 3);
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{2});
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.agreements").value(), 1u);
  EXPECT_EQ(counters.get("fault.injected.kills").value(), 1u);
}

TEST(AgreeTest, LeaderDeathMidAgreementMovesDecisionDuty) {
  // Rank 0 — the would-be leader — dies at its first agreement step,
  // before contributing. The duty falls to rank 1 and the decision excludes
  // rank 0 on every survivor.
  constexpr int kPes = 4;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{0, KillSite::kAgree, 1});
  Machine machine(config(kPes, fc));
  std::vector<AgreeResult> results(kPes);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    results[static_cast<std::size_t>(pe.rank())] = xbr_agree(~std::uint64_t{0});
  });

  const std::vector<int> survivors{1, 2, 3};
  for (const int r : survivors) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].roster, survivors);
    EXPECT_EQ(results[static_cast<std::size_t>(r)].flag, ~std::uint64_t{0});
  }
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{0});
}

TEST(AgreeTest, DeathAfterContributionIsStillExcludedByShrink) {
  // Rank 1 dies at its second agreement step — *after* publishing its
  // contribution. Depending on timing the first decision may or may not
  // still include rank 1; xbr_team_shrink's retry loop converges to the
  // true survivor set either way.
  constexpr int kPes = 4;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{1, KillSite::kAgree, 2});
  Machine machine(config(kPes, fc));
  std::vector<std::vector<int>> rosters(kPes);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto team = xbr_team_shrink();
    rosters[static_cast<std::size_t>(pe.rank())] = team->members();
  });

  const std::vector<int> survivors{0, 2, 3};
  for (const int r : survivors) {
    EXPECT_EQ(rosters[static_cast<std::size_t>(r)], survivors);
  }
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{1});
}

TEST(AgreeTest, TimeoutNamesTheMissingRank) {
  // Rank 1 never joins the agreement (and never fails), so rank 0's wait
  // must end in AgreementTimeoutError naming rank 1 — a diagnosis, not a
  // hang.
  FaultConfig fc;
  fc.barrier_timeout_ms = 200;
  Machine machine(config(2, fc));
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      if (pe.rank() == 0) xbr_agree(0);
    });
    FAIL() << "expected the agreement to time out";
  } catch (const SpmdRegionError& e) {
    ASSERT_FALSE(e.failures().empty());
    const PeFailure& primary = e.failures().front();
    EXPECT_EQ(primary.rank, 0);
    EXPECT_NE(primary.what.find("agreement"), std::string::npos);
    EXPECT_NE(primary.what.find("1"), std::string::npos);
  }
}

}  // namespace
}  // namespace xbgas
