// Property-based conformance sweep (ISSUE PR 3, satellite 1).
//
// Every collective in the API — broadcast, reduce, scatter, gather,
// reduce_all, collect, fcollect, alltoall — is checked against a
// sequential golden model on seeded-random inputs, for every PE count in
// 1..12 and for every `--coll-algo` value {auto, tree, ring, hier}. Inputs
// are a pure function of (seed, world rank, index), so each PE computes
// the golden result locally without extra communication. All element types
// here are integral, so every algorithm family must produce bit-identical
// results; a failure prints the seed that reproduces it.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "collectives/composed.hpp"
#include "collectives/nbi.hpp"
#include "collectives/policy.hpp"
#include "collectives/team.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

/// Deterministic input value: pure function of (seed, world rank, index).
long conf_val(std::uint64_t seed, int rank, std::size_t i) {
  SplitMix64 rng(seed ^
                 (static_cast<std::uint64_t>(rank) * UINT64_C(0x9e3779b9)) ^
                 (static_cast<std::uint64_t>(i) * UINT64_C(0x85ebca6b)));
  return static_cast<long>(rng.next() % 1000);
}

void run_spmd_algo(int n_pes, const std::string& algo,
                   const std::function<void(PeContext&)>& body) {
  MachineConfig config = testing::test_config(n_pes);
  config.coll_algo = algo;
  // The whole sweep runs under XbrSan's strictest mode: the shipped
  // collectives must be bounds-clean and conflict-free (ISSUE PR 4
  // acceptance). A violation throws out of Machine::run; the counter check
  // below guards against one being swallowed.
  config.san.mode = SanMode::kFull;
  Machine machine(config);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    body(pe);
    xbrtime_close();
  });
  ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
}

/// One machine run: every collective once, with shapes drawn from `seed`.
void conformance_pass(PeContext& pe, int n, std::uint64_t seed) {
  const int me = pe.rank();
  SplitMix64 shape_rng(seed);  // identical stream on every PE
  const std::size_t nelems = 1 + shape_rng.next() % 192;
  const int stride = 1 + static_cast<int>(shape_rng.next() % 3);
  const int root = static_cast<int>(shape_rng.next() % static_cast<unsigned>(n));
  const std::size_t span = nelems * static_cast<std::size_t>(stride);

  auto* dest = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
  std::vector<long> src(span, 0);
  for (std::size_t j = 0; j < nelems; ++j) {
    src[j * static_cast<std::size_t>(stride)] = conf_val(seed, me, j);
  }
  xbrtime_barrier();

  // broadcast: every PE ends with the root's vector. (dispatch_* entry
  // points so the coll_algo under test actually selects the family.)
  dispatch_broadcast(dest, src.data(), nelems, stride, root);
  for (std::size_t j = 0; j < nelems; ++j) {
    ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)],
              conf_val(seed, root, j))
        << "broadcast pe=" << me << " j=" << j;
  }
  xbrtime_barrier();

  // reduce (OpSum): the root ends with the elementwise sum over ranks.
  dispatch_reduce<OpSum>(dest, src.data(), nelems, stride, root);
  if (me == root) {
    for (std::size_t j = 0; j < nelems; ++j) {
      long golden = 0;
      for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
      ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)], golden)
          << "reduce pe=" << me << " j=" << j;
    }
  }
  xbrtime_barrier();

  // reduce_all: the same sum, on every PE.
  reduce_all<OpSum>(dest, src.data(), nelems, stride);
  for (std::size_t j = 0; j < nelems; ++j) {
    long golden = 0;
    for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
    ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)], golden)
        << "reduce_all pe=" << me << " j=" << j;
  }
  xbrtime_barrier();

  // scatter / gather / collect share random per-PE counts.
  const auto un = static_cast<std::size_t>(n);
  std::vector<int> msgs(un), disp(un);
  int total = 0;
  for (std::size_t r = 0; r < un; ++r) {
    msgs[r] = static_cast<int>(shape_rng.next() % 5);
    disp[r] = total;
    total += msgs[r];
  }
  const auto utotal = static_cast<std::size_t>(total);
  auto* vdest = static_cast<long*>(
      xbrtime_malloc(std::max<std::size_t>(utotal, 1) * sizeof(long)));

  // scatter: the root's concatenation is split by (msgs, disp).
  {
    std::vector<long> root_src(std::max<std::size_t>(utotal, 1), 0);
    for (std::size_t j = 0; j < utotal; ++j) {
      root_src[j] = conf_val(seed, root, j);
    }
    xbrtime_barrier();
    scatter(vdest, root_src.data(), msgs.data(), disp.data(), utotal, root);
    for (int j = 0; j < msgs[static_cast<std::size_t>(me)]; ++j) {
      ASSERT_EQ(vdest[j],
                conf_val(seed, root,
                         static_cast<std::size_t>(
                             disp[static_cast<std::size_t>(me)] + j)))
          << "scatter pe=" << me << " j=" << j;
    }
    xbrtime_barrier();
  }

  // gather: the root collects every PE's contribution at its displacement.
  {
    std::vector<long> mine(
        std::max<std::size_t>(
            static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]), 1),
        0);
    for (int j = 0; j < msgs[static_cast<std::size_t>(me)]; ++j) {
      mine[static_cast<std::size_t>(j)] =
          conf_val(seed, me, static_cast<std::size_t>(j));
    }
    xbrtime_barrier();
    gather(vdest, mine.data(), msgs.data(), disp.data(), utotal, root);
    if (me == root) {
      for (std::size_t r = 0; r < un; ++r) {
        for (int j = 0; j < msgs[r]; ++j) {
          ASSERT_EQ(vdest[static_cast<std::size_t>(disp[r] + j)],
                    conf_val(seed, static_cast<int>(r),
                             static_cast<std::size_t>(j)))
              << "gather pe=" << me << " r=" << r << " j=" << j;
        }
      }
    }
    xbrtime_barrier();

    // collect: the same concatenation, landing on every PE.
    collect(vdest, mine.data(), msgs.data(), disp.data(), utotal);
    for (std::size_t r = 0; r < un; ++r) {
      for (int j = 0; j < msgs[r]; ++j) {
        ASSERT_EQ(vdest[static_cast<std::size_t>(disp[r] + j)],
                  conf_val(seed, static_cast<int>(r),
                           static_cast<std::size_t>(j)))
            << "collect pe=" << me << " r=" << r << " j=" << j;
      }
    }
    xbrtime_barrier();
  }
  xbrtime_free(vdest);

  // fcollect: fixed-count concatenation in rank order.
  {
    const std::size_t per = 1 + shape_rng.next() % 7;
    auto* fdest = static_cast<long*>(xbrtime_malloc(per * un * sizeof(long)));
    std::vector<long> mine(per);
    for (std::size_t j = 0; j < per; ++j) mine[j] = conf_val(seed, me, j);
    xbrtime_barrier();
    fcollect(fdest, mine.data(), per);
    for (std::size_t r = 0; r < un; ++r) {
      for (std::size_t j = 0; j < per; ++j) {
        ASSERT_EQ(fdest[r * per + j], conf_val(seed, static_cast<int>(r), j))
            << "fcollect pe=" << me << " r=" << r << " j=" << j;
      }
    }
    xbrtime_barrier();
    xbrtime_free(fdest);
  }

  // alltoall: segment d of my src lands at segment me of PE d's dest.
  {
    const std::size_t seg = 1 + shape_rng.next() % 5;
    auto* adest = static_cast<long*>(xbrtime_malloc(seg * un * sizeof(long)));
    std::vector<long> asrc(seg * un);
    for (std::size_t d = 0; d < un; ++d) {
      for (std::size_t j = 0; j < seg; ++j) {
        asrc[d * seg + j] = conf_val(seed, me, d * seg + j);
      }
    }
    xbrtime_barrier();
    alltoall(adest, asrc.data(), seg);
    for (std::size_t s = 0; s < un; ++s) {
      for (std::size_t j = 0; j < seg; ++j) {
        ASSERT_EQ(adest[s * seg + j],
                  conf_val(seed, static_cast<int>(s),
                           static_cast<std::size_t>(me) * seg + j))
            << "alltoall pe=" << me << " from=" << s << " j=" << j;
      }
    }
    xbrtime_barrier();
    xbrtime_free(adest);
  }

  xbrtime_free(dest);
}

/// The nbi axis (ISSUE PR 8): the xbr_*_nbi forms of broadcast / reduce /
/// allreduce / fcollect must land bitwise-identical to the same golden
/// model the blocking forms are held to, under every algorithm family —
/// including when several collectives are issued before any wait and the
/// waits then run out of issue order (SPMD-consistent across PEs).
void conformance_nbi_pass(PeContext& pe, int n, std::uint64_t seed) {
  const int me = pe.rank();
  SplitMix64 shape_rng(seed ^ UINT64_C(0x9b1));  // distinct nbi shape stream
  const std::size_t nelems = 1 + shape_rng.next() % 192;
  const int stride = 1 + static_cast<int>(shape_rng.next() % 3);
  const int root = static_cast<int>(shape_rng.next() % static_cast<unsigned>(n));
  const std::size_t span = nelems * static_cast<std::size_t>(stride);
  const auto un = static_cast<std::size_t>(n);

  auto* dest = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
  std::vector<long> src(span, 0);
  for (std::size_t j = 0; j < nelems; ++j) {
    src[j * static_cast<std::size_t>(stride)] = conf_val(seed, me, j);
  }
  xbrtime_barrier();

  // broadcast_nbi: issue, wait, then the root's vector everywhere.
  CollReq rb = xbr_broadcast_nbi(dest, src.data(), nelems, stride, root);
  rb.wait();
  for (std::size_t j = 0; j < nelems; ++j) {
    ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)],
              conf_val(seed, root, j))
        << "broadcast_nbi pe=" << me << " j=" << j;
  }
  xbrtime_barrier();

  // reduce_nbi (OpSum): the root ends with the elementwise sum.
  CollReq rr = xbr_reduce_nbi<OpSum>(dest, src.data(), nelems, stride, root);
  rr.wait();
  if (me == root) {
    for (std::size_t j = 0; j < nelems; ++j) {
      long golden = 0;
      for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
      ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)], golden)
          << "reduce_nbi pe=" << me << " j=" << j;
    }
  }
  xbrtime_barrier();

  // reduce_all_nbi: the same sum, on every PE.
  CollReq ra = xbr_reduce_all_nbi<OpSum>(dest, src.data(), nelems, stride);
  ra.wait();
  for (std::size_t j = 0; j < nelems; ++j) {
    long golden = 0;
    for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
    ASSERT_EQ(dest[j * static_cast<std::size_t>(stride)], golden)
        << "reduce_all_nbi pe=" << me << " j=" << j;
  }
  xbrtime_barrier();

  // fcollect_nbi: fixed-count concatenation in rank order.
  const std::size_t per = 1 + shape_rng.next() % 7;
  auto* fdest = static_cast<long*>(xbrtime_malloc(per * un * sizeof(long)));
  std::vector<long> mine(per);
  for (std::size_t j = 0; j < per; ++j) mine[j] = conf_val(seed, me, j);
  xbrtime_barrier();
  CollReq rf = xbr_fcollect_nbi(fdest, mine.data(), per);
  rf.wait();
  for (std::size_t r = 0; r < un; ++r) {
    for (std::size_t j = 0; j < per; ++j) {
      ASSERT_EQ(fdest[r * per + j], conf_val(seed, static_cast<int>(r), j))
          << "fcollect_nbi pe=" << me << " r=" << r << " j=" << j;
    }
  }
  xbrtime_barrier();

  // Issue-many-then-wait-out-of-order: a broadcast and an fcollect both in
  // flight, waited in the OPPOSITE order of issue (same order on every PE).
  auto* dest2 = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
  auto* fdest2 = static_cast<long*>(xbrtime_malloc(per * un * sizeof(long)));
  xbrtime_barrier();
  CollReq b2 = xbr_broadcast_nbi(dest2, src.data(), nelems, stride, root);
  CollReq f2 = xbr_fcollect_nbi(fdest2, mine.data(), per);
  f2.wait();
  for (std::size_t r = 0; r < un; ++r) {
    for (std::size_t j = 0; j < per; ++j) {
      ASSERT_EQ(fdest2[r * per + j], conf_val(seed, static_cast<int>(r), j))
          << "ooo fcollect_nbi pe=" << me << " r=" << r << " j=" << j;
    }
  }
  b2.wait();
  for (std::size_t j = 0; j < nelems; ++j) {
    ASSERT_EQ(dest2[j * static_cast<std::size_t>(stride)],
              conf_val(seed, root, j))
        << "ooo broadcast_nbi pe=" << me << " j=" << j;
  }
  xbrtime_barrier();
  xbrtime_free(fdest2);
  xbrtime_free(dest2);
  xbrtime_free(fdest);
  xbrtime_free(dest);
}

class ConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConformanceTest, AllCollectivesMatchGoldenModel) {
  const std::string algo = GetParam();
  const std::uint64_t kSeeds[] = {0x5eedULL, 0xAB5EEDULL};
  for (int n = 1; n <= 12; ++n) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE("algo=" + algo + " n_pes=" + std::to_string(n) +
                   " seed=0x" + [&] {
                     char buf[32];
                     std::snprintf(buf, sizeof(buf), "%llx",
                                   static_cast<unsigned long long>(seed));
                     return std::string(buf);
                   }());
      run_spmd_algo(n, algo,
                    [&](PeContext& pe) { conformance_pass(pe, n, seed); });
    }
  }
}

TEST_P(ConformanceTest, SubTeamCollectivesMatchGoldenModel) {
  // Strided sub-team (even world ranks): the dispatcher must stay correct
  // on non-world communicators (hier degrades to tree there).
  const std::string algo = GetParam();
  constexpr std::uint64_t kSeed = 0x7ea3ULL;
  for (const int n : {4, 6, 8}) {
    SCOPED_TRACE("algo=" + algo + " n_pes=" + std::to_string(n) +
                 " seed=0x7ea3");
    run_spmd_algo(n, algo, [&](PeContext& pe) {
      const int tsize = n / 2;
      constexpr std::size_t kN = 48;
      // The symmetric heap demands identical allocation histories on every
      // PE, members and bystanders alike.
      auto* dest = static_cast<long*>(xbrtime_malloc(kN * sizeof(long)));
      std::vector<long> src(kN);
      for (std::size_t j = 0; j < kN; ++j) {
        src[j] = conf_val(kSeed, pe.rank(), j);
      }
      xbrtime_barrier();
      if (pe.rank() % 2 == 0) {
        Team team(/*start=*/0, /*stride=*/2, tsize);
        dispatch_broadcast(dest, src.data(), kN, 1, /*root=*/1, team);
        for (std::size_t j = 0; j < kN; ++j) {
          // Team rank 1 is world rank 2.
          ASSERT_EQ(dest[j], conf_val(kSeed, 2, j)) << "team bcast j=" << j;
        }
        reduce_all<OpSum>(dest, src.data(), kN, 1, team);
        for (std::size_t j = 0; j < kN; ++j) {
          long golden = 0;
          for (int t = 0; t < tsize; ++t) golden += conf_val(kSeed, 2 * t, j);
          ASSERT_EQ(dest[j], golden) << "team reduce_all j=" << j;
        }
      }
      xbrtime_barrier();
      xbrtime_free(dest);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, ConformanceTest,
                         ::testing::Values("auto", "tree", "ring", "hier"),
                         [](const auto& p) { return p.param; });

class ConformanceNbiTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConformanceNbiTest, NbiCollectivesMatchGoldenModel) {
  const std::string algo = GetParam();
  const std::uint64_t kSeeds[] = {0x5eedULL, 0xAB5EEDULL};
  for (int n = 1; n <= 12; ++n) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE("algo=" + algo + " n_pes=" + std::to_string(n) +
                   " seed=0x" + [&] {
                     char buf[32];
                     std::snprintf(buf, sizeof(buf), "%llx",
                                   static_cast<unsigned long long>(seed));
                     return std::string(buf);
                   }());
      run_spmd_algo(n, algo,
                    [&](PeContext& pe) { conformance_nbi_pass(pe, n, seed); });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, ConformanceNbiTest,
                         ::testing::Values("auto", "tree", "ring", "hier"),
                         [](const auto& p) { return p.param; });

// -- Hierarchy axis (this PR): depth x radix x PE count ---------------------

/// Engine-level golden pass: all four hierarchical collectives for one
/// explicit (groups, radix) shape, random payload drawn from `seed`.
void hierarchy_pass(PeContext& pe, int n, const std::vector<int>& groups,
                    int radix, std::uint64_t seed) {
  const int me = pe.rank();
  const auto un = static_cast<std::size_t>(n);
  SplitMix64 shape_rng(seed);
  const std::size_t nelems = 1 + shape_rng.next() % 96;
  const int root = static_cast<int>(shape_rng.next() % static_cast<unsigned>(n));
  const HierShape shape{groups, radix, 0};

  auto* dest = static_cast<long*>(xbrtime_malloc(nelems * sizeof(long)));
  auto* all = static_cast<long*>(xbrtime_malloc(nelems * un * sizeof(long)));
  std::vector<long> src(nelems);
  for (std::size_t j = 0; j < nelems; ++j) src[j] = conf_val(seed, me, j);
  xbrtime_barrier();

  hier_broadcast(dest, src.data(), nelems, 1, root, shape);
  for (std::size_t j = 0; j < nelems; ++j) {
    ASSERT_EQ(dest[j], conf_val(seed, root, j)) << "hier bcast j=" << j;
  }
  xbrtime_barrier();

  hier_reduce<OpSum>(dest, src.data(), nelems, 1, root, shape);
  if (me == root) {
    for (std::size_t j = 0; j < nelems; ++j) {
      long golden = 0;
      for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
      ASSERT_EQ(dest[j], golden) << "hier reduce j=" << j;
    }
  }
  xbrtime_barrier();

  hier_reduce_all<OpSum>(dest, src.data(), nelems, 1, shape);
  for (std::size_t j = 0; j < nelems; ++j) {
    long golden = 0;
    for (int r = 0; r < n; ++r) golden += conf_val(seed, r, j);
    ASSERT_EQ(dest[j], golden) << "hier reduce_all j=" << j;
  }
  xbrtime_barrier();

  hier_fcollect(all, src.data(), nelems, shape);
  for (std::size_t r = 0; r < un; ++r) {
    for (std::size_t j = 0; j < nelems; ++j) {
      ASSERT_EQ(all[r * nelems + j], conf_val(seed, static_cast<int>(r), j))
          << "hier fcollect r=" << r << " j=" << j;
    }
  }
  xbrtime_barrier();
  xbrtime_free(all);
  xbrtime_free(dest);
}

TEST(ConformanceHierarchyTest, DepthByRadixSweepUnderFullSanitizer) {
  // Every hierarchy depth {1,2,3} x radix {2,4,8} x PE count (power-of-two
  // and not), engine-level, under XbrSan's strictest mode.
  struct HierShapeCase {
    int n;
    std::vector<int> groups;
  };
  const HierShapeCase shapes[] = {
      {6, {}}, {8, {}},                       // depth 1
      {8, {4}}, {9, {3}}, {12, {4}},          // depth 2
      {8, {2, 4}}, {12, {2, 6}}, {16, {2, 8}}  // depth 3
  };
  constexpr std::uint64_t kSeed = 0x1e5ULL;
  for (const auto& s : shapes) {
    for (const int radix : {2, 4, 8}) {
      SCOPED_TRACE("n=" + std::to_string(s.n) + " depth=" +
                   std::to_string(s.groups.size() + 1) + " radix=" +
                   std::to_string(radix));
      MachineConfig config = testing::test_config(s.n);
      config.san.mode = SanMode::kFull;
      Machine machine(config);
      machine.run([&](PeContext& pe) {
        xbrtime_init();
        hierarchy_pass(pe, s.n, s.groups, radix, kSeed);
        xbrtime_close();
      });
      ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
    }
  }
}

TEST(ConformanceHierarchyTest, KnomialRadixDispatchMatchesGolden) {
  // --coll-radix routes the flat dispatchers through the k-nomial
  // schedules (blocking and nbi); results must stay bitwise golden.
  constexpr std::uint64_t kSeed = 0x4ad1ULL;
  for (const int n : {5, 8, 12}) {
    for (const int radix : {4, 8}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " radix=" +
                   std::to_string(radix));
      MachineConfig config = testing::test_config(n);
      config.coll_algo = "tree";
      config.coll_radix = radix;
      config.san.mode = SanMode::kFull;
      Machine machine(config);
      machine.run([&](PeContext& pe) {
        xbrtime_init();
        conformance_pass(pe, n, kSeed);
        conformance_nbi_pass(pe, n, kSeed);
        xbrtime_close();
      });
      ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
    }
  }
}

TEST(ConformanceClusterTest, MultiLevelClusterHierMatchesGolden) {
  // A two-boundary cluster (pairs within nodes of 8): forced hier runs the
  // three-level schedule through the dispatchers, blocking and nbi.
  constexpr std::uint64_t kSeed = 0x3c15EEDULL;
  MachineConfig config = testing::test_config(16);
  config.topology_name = "cluster2x4_8x32";
  config.coll_algo = "hier";
  config.san.mode = SanMode::kFull;
  Machine machine(config);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    conformance_pass(pe, 16, kSeed);
    conformance_nbi_pass(pe, 16, kSeed);
    xbrtime_close();
  });
  ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(ConformanceClusterTest, HierOnClusterTopologyMatchesGolden) {
  // On a cluster fabric forced hier actually runs the hierarchical path
  // (group 4 divides 8); results must still match the golden model.
  constexpr std::uint64_t kSeed = 0xC105EEDULL;
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x8";
  config.coll_algo = "hier";
  config.san.mode = SanMode::kFull;
  Machine machine(config);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    conformance_pass(pe, 8, kSeed);
    xbrtime_close();
  });
  ASSERT_EQ(machine.sanitizer().counters().violations, 0u);
}

}  // namespace
}  // namespace xbgas
