// Parameterized property sweeps: every collective, every (n_pes, root)
// combination up to 9 PEs, as TEST_P suites so each combination reports as
// its own test case. These complement the scenario tests by checking the
// *joint* behaviour of all four collectives plus composition under a single
// configuration.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "collectives/ring.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using PeRoot = std::tuple<int, int>;

std::vector<PeRoot> all_pe_root_pairs() {
  std::vector<PeRoot> out;
  for (int n = 1; n <= 9; ++n) {
    for (int root = 0; root < n; ++root) out.emplace_back(n, root);
  }
  return out;
}

std::string pe_root_name(const ::testing::TestParamInfo<PeRoot>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_root" +
         std::to_string(std::get<1>(info.param));
}

class CollectiveSweep : public ::testing::TestWithParam<PeRoot> {};

TEST_P(CollectiveSweep, AllFourCollectivesCompose) {
  const auto [n, root] = GetParam();
  testing::run_spmd(n, [&, n = n, root = root](PeContext& pe) {
    const int me = pe.rank();
    const auto un = static_cast<std::size_t>(n);

    // --- broadcast: every PE learns the root's vector -------------------
    constexpr std::size_t kElems = 5;
    auto* bcast = static_cast<long*>(xbrtime_malloc(kElems * sizeof(long)));
    std::vector<long> seed(kElems);
    for (std::size_t i = 0; i < kElems; ++i) {
      seed[i] = root * 100 + static_cast<long>(i);
    }
    broadcast(bcast, seed.data(), kElems, 1, root);
    for (std::size_t i = 0; i < kElems; ++i) {
      ASSERT_EQ(bcast[i], root * 100 + static_cast<long>(i));
    }

    // --- reduce: fold a value derived from the broadcast ----------------
    auto* contrib = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    *contrib = bcast[0] + me;  // root*100 + rank
    long folded = -1;
    reduce<OpSum>(&folded, contrib, 1, 1, root);
    if (me == root) {
      ASSERT_EQ(folded, n * root * 100 + n * (n - 1) / 2);
    }

    // --- scatter/gather round trip with uneven counts -------------------
    std::vector<int> msgs(un), disp(un);
    for (int r = 0; r < n; ++r) {
      msgs[static_cast<std::size_t>(r)] = 1 + (r + root) % 3;
    }
    std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
    const auto total = static_cast<std::size_t>(
        std::accumulate(msgs.begin(), msgs.end(), 0));
    std::vector<long> source(total);
    std::iota(source.begin(), source.end(), 7000);
    const auto mine = static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
    std::vector<long> slice(mine);
    std::vector<long> rebuilt(total, 0);

    scatter(slice.data(), source.data(), msgs.data(), disp.data(), total,
            root);
    for (std::size_t i = 0; i < mine; ++i) {
      ASSERT_EQ(slice[i],
                7000 + disp[static_cast<std::size_t>(me)] + static_cast<long>(i));
    }
    gather(rebuilt.data(), slice.data(), msgs.data(), disp.data(), total,
           root);
    if (me == root) {
      ASSERT_EQ(rebuilt, source);
    }

    xbrtime_barrier();
    xbrtime_free(contrib);
    xbrtime_free(bcast);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPeRootPairs, CollectiveSweep,
                         ::testing::ValuesIn(all_pe_root_pairs()),
                         pe_root_name);

// ---------------------------------------------------------------------------
// Reduction-operator sweep: every op against a serial reference fold.
// ---------------------------------------------------------------------------

class ReduceOpSweep : public ::testing::TestWithParam<int> {};

template <class Op>
void check_against_serial(int n) {
  testing::run_spmd(n, [&](PeContext& pe) {
    auto* src = static_cast<std::uint32_t*>(
        xbrtime_malloc(4 * sizeof(std::uint32_t)));
    for (int i = 0; i < 4; ++i) {
      src[i] = static_cast<std::uint32_t>((pe.rank() * 7 + i * 3) % 13 + 1);
    }
    std::uint32_t out[4] = {};
    reduce<Op>(out, src, 4, 1, 0);
    if (pe.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        std::uint32_t expected =
            static_cast<std::uint32_t>((0 * 7 + i * 3) % 13 + 1);
        for (int r = 1; r < n; ++r) {
          expected = Op::apply(
              expected, static_cast<std::uint32_t>((r * 7 + i * 3) % 13 + 1));
        }
        EXPECT_EQ(out[i], expected) << "n=" << n << " i=" << i;
      }
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST_P(ReduceOpSweep, EveryOperatorMatchesSerialFold) {
  const int n = GetParam();
  check_against_serial<OpSum>(n);
  check_against_serial<OpProd>(n);
  check_against_serial<OpMin>(n);
  check_against_serial<OpMax>(n);
  check_against_serial<OpBand>(n);
  check_against_serial<OpBor>(n);
  check_against_serial<OpBxor>(n);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, ReduceOpSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 9),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "n" + std::to_string(tpi.param);
                         });

// ---------------------------------------------------------------------------
// Stride sweep: broadcast and reduce over (stride, nelems) pairs.
// ---------------------------------------------------------------------------

using StrideCase = std::tuple<int, int>;  // (stride, nelems)

class StrideSweep : public ::testing::TestWithParam<StrideCase> {};

TEST_P(StrideSweep, BroadcastAndReduceHonourStride) {
  const auto [stride, nelems] = GetParam();
  testing::run_spmd(6, [&, stride = stride, nelems = nelems](PeContext& pe) {
    const auto un_elems = static_cast<std::size_t>(nelems);
    const std::size_t span =
        un_elems == 0 ? 1 : (un_elems - 1) * static_cast<std::size_t>(stride) + 1;
    auto* buf = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
    std::fill(buf, buf + span, -1);
    std::vector<long> src(span, 0);
    for (std::size_t i = 0; i < un_elems; ++i) {
      src[i * static_cast<std::size_t>(stride)] = static_cast<long>(i) + 1;
    }
    xbrtime_barrier();

    broadcast(buf, src.data(), un_elems, stride, 2);
    for (std::size_t i = 0; i < span; ++i) {
      if (i % static_cast<std::size_t>(stride) == 0 &&
          i / static_cast<std::size_t>(stride) < un_elems) {
        ASSERT_EQ(buf[i],
                  static_cast<long>(i / static_cast<std::size_t>(stride)) + 1);
      } else {
        ASSERT_EQ(buf[i], -1) << "gap clobbered";
      }
    }

    long out_span[64];
    std::fill(out_span, out_span + 64, -9);
    reduce<OpSum>(out_span, buf, un_elems, stride, 0);
    if (pe.rank() == 0) {
      for (std::size_t i = 0; i < un_elems; ++i) {
        ASSERT_EQ(out_span[i * static_cast<std::size_t>(stride)],
                  6 * (static_cast<long>(i) + 1));
      }
    }
    xbrtime_barrier();
    xbrtime_free(buf);
  });
}

INSTANTIATE_TEST_SUITE_P(
    StrideByElems, StrideSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(0, 1, 4, 12)),
    [](const ::testing::TestParamInfo<StrideCase>& tpi) {
      return "stride" + std::to_string(std::get<0>(tpi.param)) + "_elems" +
             std::to_string(std::get<1>(tpi.param));
    });

// ---------------------------------------------------------------------------
// Algorithm-equivalence sweep: binomial, linear and ring broadcast must be
// observationally identical for every PE count.
// ---------------------------------------------------------------------------

class AlgorithmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmEquivalence, TreeRingDeliverIdenticalResults) {
  const int n = GetParam();
  testing::run_spmd(n, [&](PeContext&) {
    auto* via_tree = static_cast<int*>(xbrtime_malloc(32 * sizeof(int)));
    auto* via_ring = static_cast<int*>(xbrtime_malloc(32 * sizeof(int)));
    std::vector<int> src(32);
    std::iota(src.begin(), src.end(), 100);
    xbrtime_barrier();
    const int root = (n > 1) ? 1 : 0;
    broadcast(via_tree, src.data(), 32, 1, root);
    ring_broadcast(via_ring, src.data(), 32, 1, root);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(via_tree[i], via_ring[i]);
      ASSERT_EQ(via_tree[i], 100 + i);
    }
    xbrtime_barrier();
    xbrtime_free(via_ring);
    xbrtime_free(via_tree);
  });
}

INSTANTIATE_TEST_SUITE_P(PeCounts, AlgorithmEquivalence,
                         ::testing::Range(1, 10),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "n" + std::to_string(tpi.param);
                         });

}  // namespace
}  // namespace xbgas
