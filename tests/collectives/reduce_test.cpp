#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "collectives/api_c.hpp"
#include "collectives/baseline.hpp"
#include "collectives/collectives.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::kPeCounts;
using testing::run_spmd;

/// Property: the root's dest equals a serial fold of every PE's
/// contribution; non-root dests and all src buffers are untouched.
template <class Op>
void check_reduce(int n_pes, int root, std::size_t nelems, int stride) {
  run_spmd(n_pes, [&](PeContext& pe) {
    const std::size_t span =
        nelems == 0 ? 1 : (nelems - 1) * static_cast<std::size_t>(stride) + 1;
    auto* src = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
    std::vector<long> dest(span, -555);
    for (std::size_t i = 0; i < span; ++i) {
      // Deterministic per-(pe, position) contribution, never zero so that
      // products stay informative.
      src[i] = static_cast<long>((pe.rank() + 2) * 10 + static_cast<int>(i % 5));
    }
    xbrtime_barrier();

    reduce<Op>(dest.data(), src, nelems, stride, root);

    if (pe.rank() == root) {
      for (std::size_t i = 0; i < nelems; ++i) {
        const std::size_t at = i * static_cast<std::size_t>(stride);
        long expected = static_cast<long>(2 * 10 + static_cast<int>(at % 5));
        for (int r = 1; r < n_pes; ++r) {
          expected = Op::apply(
              expected,
              static_cast<long>((r + 2) * 10 + static_cast<int>(at % 5)));
        }
        EXPECT_EQ(dest[at], expected)
            << "n=" << n_pes << " root=" << root << " pos=" << at;
      }
    } else {
      for (std::size_t i = 0; i < span; ++i) {
        EXPECT_EQ(dest[i], -555) << "non-root dest written on PE " << pe.rank();
      }
    }
    // src is never modified by reduce (the algorithm stages through s_buff).
    for (std::size_t i = 0; i < span; ++i) {
      EXPECT_EQ(src[i], static_cast<long>((pe.rank() + 2) * 10 +
                                          static_cast<int>(i % 5)));
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST(ReduceTest, SumAllPeCountsAndRoots) {
  for (const int n : kPeCounts) {
    for (int root = 0; root < n; ++root) {
      check_reduce<OpSum>(n, root, 6, 1);
    }
  }
}

TEST(ReduceTest, ProdMinMaxAcrossAwkwardSizes) {
  for (const int n : {1, 3, 5, 7, 8}) {
    check_reduce<OpProd>(n, n / 2, 3, 1);
    check_reduce<OpMin>(n, 0, 5, 1);
    check_reduce<OpMax>(n, n - 1, 5, 1);
  }
}

TEST(ReduceTest, StridedReduction) {
  // OpenSHMEM doesn't support non-default strides here; we must (§4.7).
  for (const int stride : {2, 4}) {
    check_reduce<OpSum>(6, 2, 5, stride);
  }
}

TEST(ReduceTest, BitwiseOpsOnIntegers) {
  check_reduce<OpBand>(5, 1, 4, 1);
  check_reduce<OpBor>(5, 1, 4, 1);
  check_reduce<OpBxor>(5, 1, 4, 1);
}

TEST(ReduceTest, ZeroElements) { check_reduce<OpSum>(4, 1, 0, 1); }

TEST(ReduceTest, FloatingPointSum) {
  run_spmd(4, [&](PeContext& pe) {
    auto* src = static_cast<double*>(xbrtime_malloc(2 * sizeof(double)));
    src[0] = 0.5 * (pe.rank() + 1);
    src[1] = -1.0 * pe.rank();
    double dest[2] = {0, 0};
    xbrtime_barrier();
    reduce<OpSum>(dest, src, 2, 1, 0);
    if (pe.rank() == 0) {
      EXPECT_DOUBLE_EQ(dest[0], 0.5 * (1 + 2 + 3 + 4));
      EXPECT_DOUBLE_EQ(dest[1], -(0.0 + 1 + 2 + 3));
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST(ReduceTest, MinMaxWithExtremes) {
  run_spmd(5, [&](PeContext& pe) {
    auto* src = static_cast<std::int64_t*>(
        xbrtime_malloc(sizeof(std::int64_t)));
    *src = pe.rank() == 3 ? std::numeric_limits<std::int64_t>::min()
                          : pe.rank();
    std::int64_t lo = 0, hi = 0;
    xbrtime_barrier();
    reduce<OpMin>(&lo, src, 1, 1, 0);
    reduce<OpMax>(&hi, src, 1, 1, 0);
    if (pe.rank() == 0) {
      EXPECT_EQ(lo, std::numeric_limits<std::int64_t>::min());
      EXPECT_EQ(hi, 4);
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST(ReduceTest, MatchesLinearBaseline) {
  for (const int n : {2, 6, 8}) {
    run_spmd(n, [&](PeContext& pe) {
      auto* src = static_cast<int*>(xbrtime_malloc(8 * sizeof(int)));
      for (int i = 0; i < 8; ++i) src[i] = pe.rank() * 8 + i;
      int via_tree[8] = {}, via_linear[8] = {};
      xbrtime_barrier();
      reduce<OpSum>(via_tree, src, 8, 1, 0);
      linear_reduce<OpSum>(via_linear, src, 8, 1, 0);
      if (pe.rank() == 0) {
        for (int i = 0; i < 8; ++i) EXPECT_EQ(via_tree[i], via_linear[i]);
      }
      xbrtime_barrier();
      xbrtime_free(src);
    });
  }
}

TEST(ReduceTest, TypedCApiIncludingBitwise) {
  run_spmd(4, [&](PeContext& pe) {
    auto* src =
        static_cast<std::uint32_t*>(xbrtime_malloc(sizeof(std::uint32_t)));
    *src = std::uint32_t{1} << pe.rank();
    std::uint32_t ored = 0, summed = 0;
    xbrtime_barrier();
    xbrtime_uint32_reduce_or(&ored, src, 1, 1, 0);
    xbrtime_uint32_reduce_sum(&summed, src, 1, 1, 0);
    if (pe.rank() == 0) {
      EXPECT_EQ(ored, 0b1111u);
      EXPECT_EQ(summed, 0b1111u);
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST(ReduceTest, BackToBackReductionsDoNotInterfere) {
  run_spmd(3, [&](PeContext& pe) {
    auto* src = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    for (int round = 0; round < 5; ++round) {
      *src = pe.rank() + round;
      xbrtime_barrier();
      int out = 0;
      reduce<OpSum>(&out, src, 1, 1, round % 3);
      if (pe.rank() == round % 3) {
        EXPECT_EQ(out, (0 + 1 + 2) + 3 * round);
      }
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

}  // namespace
}  // namespace xbgas
