// xbr_team_shrink / SurvivorTeam / xbr_team_revoke — survivors of a PE
// death agree on a new team, run collectives on it, and keep going; revoke
// wakes waiters with a typed non-death error.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"
#include "collectives/shrink.hpp"
#include "trace/collect.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  return c;
}

TEST(ShrinkTest, ShrinkExcludesDeadRankAndRemapsRanks) {
  constexpr int kPes = 6;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});
  Machine machine(config(kPes, fc));
  std::vector<std::vector<int>> members(kPes);
  std::vector<int> team_rank(kPes, -1);
  std::vector<int> barriers_ok(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    try {
      xbrtime_barrier();  // rank 2 dies here
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      const auto me = static_cast<std::size_t>(pe.rank());
      members[me] = team->members();
      team_rank[me] = team->rank();
      EXPECT_EQ(team->world_rank(team->rank()), pe.rank());
      EXPECT_FALSE(team->contains_world_rank(2));
      EXPECT_TRUE(team->contains_world_rank(pe.rank()));
      for (int i = 0; i < 3; ++i) team->barrier();
      barriers_ok[me] = 1;
    }
  });

  const std::vector<int> survivors{0, 1, 3, 4, 5};
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const auto wr = static_cast<std::size_t>(survivors[i]);
    EXPECT_EQ(members[wr], survivors);
    EXPECT_EQ(team_rank[wr], static_cast<int>(i));
    EXPECT_EQ(barriers_ok[wr], 1) << "post-shrink team barriers must work";
  }
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.shrinks").value(), 1u);
  EXPECT_EQ(counters.get("recovery.agreements").value(), 1u);
  EXPECT_EQ(counters.get("machine.pes_alive").value(), 5u);
}

TEST(ShrinkTest, CollectivesRunOnTheShrunkenTeam) {
  constexpr int kPes = 6;
  constexpr std::size_t kElems = 32;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{4, KillSite::kBarrier, 8});
  Machine machine(config(kPes, fc));
  std::vector<int> verified(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    // Symmetric buffers must exist before the death: xbrtime_malloc is a
    // world collective and cannot run once the world barrier is poisoned.
    auto* src = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));   // barriers #4,#5
    auto* dest = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));   // barriers #6,#7
    for (std::size_t i = 0; i < kElems; ++i) {
      src[i] = static_cast<std::uint64_t>(pe.rank() + 1);
    }
    try {
      xbrtime_barrier();  // barrier #8: rank 4 dies
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      dispatch_reduce_all<OpSum>(dest, src, kElems, 1, *team);
      std::uint64_t expect = 0;
      for (const int wr : team->members()) {
        expect += static_cast<std::uint64_t>(wr + 1);
      }
      bool ok = true;
      for (std::size_t i = 0; i < kElems; ++i) ok &= dest[i] == expect;
      verified[static_cast<std::size_t>(pe.rank())] = ok ? 1 : 0;
    }
  });

  for (const int wr : {0, 1, 2, 3, 5}) {
    EXPECT_EQ(verified[static_cast<std::size_t>(wr)], 1)
        << "allreduce over the shrunken team must match the roster sum on "
           "world rank " << wr;
  }
}

TEST(ShrinkTest, SecondDeathShrinksAgain) {
  constexpr int kPes = 8;
  FaultConfig fc;
  fc.kills.push_back(KillSpec{2, KillSite::kBarrier, 4});
  fc.kills.push_back(KillSpec{5, KillSite::kBarrier, 6});
  Machine machine(config(kPes, fc));
  std::vector<std::vector<int>> final_members(kPes);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    std::unique_ptr<SurvivorTeam> team;
    try {
      xbrtime_barrier();  // barrier #4: rank 2 dies
    } catch (const PeFailedError&) {
      team = xbr_team_shrink();  // rendezvous = barrier #5
    }
    try {
      team->barrier();  // barrier #6: rank 5 dies
    } catch (const PeFailedError&) {
      team = xbr_team_shrink(*team);
    }
    final_members[static_cast<std::size_t>(pe.rank())] = team->members();
  });

  const std::vector<int> survivors{0, 1, 3, 4, 6, 7};
  for (const int wr : survivors) {
    EXPECT_EQ(final_members[static_cast<std::size_t>(wr)], survivors);
  }
  EXPECT_EQ(machine.failed_ranks(), (std::vector<int>{2, 5}));
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.shrinks").value(), 2u);
  EXPECT_EQ(counters.get("fault.injected.kills").value(), 2u);
}

TEST(ShrinkTest, RevokeWakesWaitersWithTypedError) {
  constexpr int kPes = 4;
  Machine machine(config(kPes));
  std::vector<int> saw_revoked(kPes, 0);
  std::vector<int> wrong_type(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto team = xbr_team_shrink();  // healthy world -> team of everyone
    if (pe.rank() == 0) {
      xbr_team_revoke(*team);
      return;  // never arrives: revocation must wake the others anyway
    }
    try {
      team->barrier();
      wrong_type[static_cast<std::size_t>(pe.rank())] = 1;
    } catch (const PeFailedError&) {
      wrong_type[static_cast<std::size_t>(pe.rank())] = 1;  // not a death!
    } catch (const Error& e) {
      saw_revoked[static_cast<std::size_t>(pe.rank())] =
          std::string(e.what()).find("revoked") != std::string::npos ? 1 : 0;
    }
  });

  for (int r = 1; r < kPes; ++r) {
    EXPECT_EQ(saw_revoked[static_cast<std::size_t>(r)], 1);
    EXPECT_EQ(wrong_type[static_cast<std::size_t>(r)], 0);
  }
  EXPECT_EQ(machine.n_alive(), kPes);  // revocation is not a failure
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_EQ(counters.get("recovery.revokes").value(), 1u);
}

TEST(ShrinkTest, TeamRevokeAlsoWorksOnActiveSetTeams) {
  constexpr int kPes = 4;
  Machine machine(config(kPes));
  std::vector<int> saw_revoked(kPes, 0);

  machine.run([&](PeContext& pe) {
    xbrtime_init();
    Team team(0, 1, kPes);
    if (pe.rank() == 1) {
      xbr_team_revoke(team);
      return;
    }
    try {
      team.barrier();
    } catch (const Error& e) {
      saw_revoked[static_cast<std::size_t>(pe.rank())] =
          std::string(e.what()).find("revoked") != std::string::npos ? 1 : 0;
    }
  });

  for (const int r : {0, 2, 3}) {
    EXPECT_EQ(saw_revoked[static_cast<std::size_t>(r)], 1);
  }
}

}  // namespace
}  // namespace xbgas
