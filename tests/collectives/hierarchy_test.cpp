#include "collectives/hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "collectives/nbi.hpp"
#include "common/error.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::run_spmd;

// ---------------------------------------------------------------------------
// Engine-level sweep: every collective kind x hierarchy depth {1,2,3} x
// k-nomial radix {2,4,8}, against the sequential golden model, including
// non-power-of-two PE counts and non-leader roots.
// ---------------------------------------------------------------------------

void check_engine(int n, const std::vector<int>& groups, int radix, int root,
                  std::size_t nelems) {
  run_spmd(n, [&](PeContext& pe) {
    const HierShape shape{groups, radix, 0};
    const std::size_t cap = std::max<std::size_t>(nelems, 1);
    auto* dest = static_cast<long*>(xbrtime_malloc(cap * sizeof(long)));
    auto* all = static_cast<long*>(
        xbrtime_malloc(cap * static_cast<std::size_t>(n) * sizeof(long)));
    std::vector<long> src(cap);
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i] = pe.rank() * 100 + static_cast<long>(i) + 1;
    }
    const std::string where = "n=" + std::to_string(n) + " depth=" +
                              std::to_string(groups.size() + 1) + " radix=" +
                              std::to_string(radix) + " root=" +
                              std::to_string(root) + " pe=" +
                              std::to_string(pe.rank());

    std::fill(dest, dest + cap, -1);
    xbrtime_barrier();
    hier_broadcast(dest, src.data(), nelems, 1, root, shape);
    for (std::size_t i = 0; i < nelems; ++i) {
      EXPECT_EQ(dest[i], root * 100 + static_cast<long>(i) + 1)
          << "broadcast " << where;
    }
    xbrtime_barrier();

    hier_reduce<OpSum>(dest, src.data(), nelems, 1, root, shape);
    if (pe.rank() == root) {
      for (std::size_t i = 0; i < nelems; ++i) {
        const long want = 100 * (n - 1) * n / 2 +
                          n * (static_cast<long>(i) + 1);
        EXPECT_EQ(dest[i], want) << "reduce " << where;
      }
    }
    xbrtime_barrier();

    hier_reduce_all<OpSum>(dest, src.data(), nelems, 1, shape);
    for (std::size_t i = 0; i < nelems; ++i) {
      const long want = 100 * (n - 1) * n / 2 + n * (static_cast<long>(i) + 1);
      EXPECT_EQ(dest[i], want) << "reduce_all " << where;
    }
    xbrtime_barrier();

    if (nelems > 0) {
      hier_fcollect(all, src.data(), nelems, shape);
      for (int p = 0; p < n; ++p) {
        for (std::size_t i = 0; i < nelems; ++i) {
          EXPECT_EQ(all[static_cast<std::size_t>(p) * nelems + i],
                    p * 100 + static_cast<long>(i) + 1)
              << "fcollect " << where;
        }
      }
      xbrtime_barrier();
    }
    xbrtime_free(all);
    xbrtime_free(dest);
  });
}

// (n, groups) shapes: depth 1 (flat k-nomial), depth 2, depth 3; power-of-two
// and awkward PE counts.
struct EngineShape {
  int n;
  std::vector<int> groups;
};

const EngineShape kEngineShapes[] = {
    {6, {}},      {8, {}},                      // depth 1
    {8, {4}},     {12, {4}}, {6, {3}}, {9, {3}},  // depth 2
    {8, {2, 4}},  {12, {2, 6}}, {16, {2, 8}},     // depth 3
};

class HierarchyEngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchyEngineSweep, MatchesGolden) {
  const auto [shape_idx, radix] = GetParam();
  const EngineShape& s = kEngineShapes[shape_idx];
  check_engine(s.n, s.groups, radix, /*root=*/0, 24);
  check_engine(s.n, s.groups, radix, /*root=*/s.n - 1, 24);
}

INSTANTIATE_TEST_SUITE_P(
    DepthByRadix, HierarchyEngineSweep,
    ::testing::Combine(::testing::Range(0, 9), ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& tpi) {
      const EngineShape& s = kEngineShapes[std::get<0>(tpi.param)];
      std::string name = "n" + std::to_string(s.n) + "_d" +
                         std::to_string(s.groups.size() + 1) + "_r" +
                         std::to_string(std::get<1>(tpi.param));
      for (const int g : s.groups) name += "_g" + std::to_string(g);
      return name;
    });

TEST(HierarchyEngineTest, ZeroElements) {
  check_engine(8, {2, 4}, 4, /*root=*/3, 0);
}

TEST(HierarchyEngineTest, RejectsBadShapes) {
  run_spmd(6, [&](PeContext&) {
    long d = 0, s = 0;
    // group does not divide n
    EXPECT_THROW(hier_broadcast(&d, &s, 1, 1, 0, HierShape{{4}, 2, 0}),
                 Error);
    // non-ascending / broken divisibility chain
    EXPECT_THROW(validate_hier_shape(HierShape{{3, 2}, 2, 0}, 12), Error);
    EXPECT_THROW(validate_hier_shape(HierShape{{4, 6}, 2, 0}, 12), Error);
    // radix below 2
    EXPECT_THROW(validate_hier_shape(HierShape{{3}, 1, 0}, 6), Error);
    // group covering the whole world is not a hierarchy level
    EXPECT_THROW(validate_hier_shape(HierShape{{6}, 2, 0}, 6), Error);
  });
}

// ---------------------------------------------------------------------------
// Legacy two-level shim (hierarchical_broadcast) keeps its old contract.
// ---------------------------------------------------------------------------

void check_hierarchical(int n, int root, int group_size, std::size_t nelems) {
  run_spmd(n, [&](PeContext& pe) {
    auto* dest = static_cast<long*>(
        xbrtime_malloc(std::max<std::size_t>(nelems, 1) * sizeof(long)));
    std::fill(dest, dest + std::max<std::size_t>(nelems, 1), -8);
    std::vector<long> src(std::max<std::size_t>(nelems, 1));
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i] = root * 1000 + static_cast<long>(i);
    }
    xbrtime_barrier();
    hierarchical_broadcast(dest, src.data(), nelems, 1, root, group_size);
    for (std::size_t i = 0; i < nelems; ++i) {
      EXPECT_EQ(dest[i], root * 1000 + static_cast<long>(i))
          << "pe=" << pe.rank() << " n=" << n << " root=" << root
          << " group=" << group_size;
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

using HierCase = std::tuple<int, int, int>;  // (n, root, group_size)

class HierarchicalSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierarchicalSweep, DeliversEverywhere) {
  const auto [n, root, group] = GetParam();
  check_hierarchical(n, root, group, 24);
}

std::vector<HierCase> hier_cases() {
  std::vector<HierCase> out;
  for (const auto& [n, group] :
       {std::pair{4, 2}, std::pair{8, 2}, std::pair{8, 4}, std::pair{6, 3},
        std::pair{6, 2}, std::pair{9, 3}, std::pair{12, 4}, std::pair{12, 3}}) {
    for (int root : {0, 1, n - 1}) {
      out.emplace_back(n, root, group);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalSweep, ::testing::ValuesIn(hier_cases()),
    [](const ::testing::TestParamInfo<HierCase>& tpi) {
      return "n" + std::to_string(std::get<0>(tpi.param)) + "_root" +
             std::to_string(std::get<1>(tpi.param)) + "_g" +
             std::to_string(std::get<2>(tpi.param));
    });

TEST(HierarchicalBroadcastTest, DegenerateGroupSizes) {
  check_hierarchical(6, 2, 1, 8);  // == plain tree
  check_hierarchical(6, 2, 6, 8);  // one group == plain tree
}

TEST(HierarchicalBroadcastTest, ZeroElements) {
  check_hierarchical(8, 3, 4, 0);
}

TEST(HierarchicalBroadcastTest, RejectsIndivisibleGroups) {
  Machine machine(testing::test_config(6));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 auto* d = static_cast<int*>(xbrtime_malloc(16));
                 int s = 0;
                 hierarchical_broadcast(d, &s, 1, 1, 0, 4);
               }),
               Error);
}

TEST(HierarchicalBroadcastTest, FewerInterNodeTransfersThanFlatTree) {
  // The point of the optimization: on a cluster fabric (cheap on-node
  // links, expensive node-boundary crossings — the structure the OLB
  // exposes) with a root that is not node-aligned, the flat binomial tree
  // crosses node boundaries at several stages while the two-level scheme
  // crosses exactly once per remote node.
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x8";  // nodes of 4, boundary costs 8 hops
  config.net.per_hop_cycles = 400;      // make distance dominate
  config.net.fabric_message_cycles = 0;
  config.net.fabric_bytes_per_cycle = 1e9;
  Machine machine(config);
  std::uint64_t flat_cycles = 0, hier_cycles = 0;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    std::vector<long> src(256, 3);
    xbrtime_barrier();
    // Warm both forwarding sets.
    broadcast(buf, src.data(), 256, 1, /*root=*/3);
    xbrtime_barrier();
    hierarchical_broadcast(buf, src.data(), 256, 1, /*root=*/3, 4);
    xbrtime_barrier();

    const std::uint64_t t0 = pe.clock().cycles();
    broadcast(buf, src.data(), 256, 1, /*root=*/3);
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();
    hierarchical_broadcast(buf, src.data(), 256, 1, /*root=*/3, 4);
    xbrtime_barrier();
    const std::uint64_t t2 = pe.clock().cycles();
    if (pe.rank() == 0) {
      flat_cycles = t1 - t0;
      hier_cycles = t2 - t1;
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_LT(hier_cycles, flat_cycles);
}

TEST(HierarchyCostTest, ThreeLevelClusterBeatsFlatOnDeepFabric) {
  // A 16-PE machine with a two-boundary cluster (pairs inside nodes of 8):
  // the three-level schedule crosses the expensive outer boundary once per
  // node instead of log n times.
  MachineConfig config = testing::test_config(16);
  config.topology_name = "cluster2x4_8x64";
  config.net.per_hop_cycles = 300;
  config.net.fabric_message_cycles = 0;
  config.net.fabric_bytes_per_cycle = 1e9;
  Machine machine(config);
  std::uint64_t flat_cycles = 0, hier_cycles = 0;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(512 * sizeof(long)));
    std::vector<long> src(512, 5);
    const HierShape shape{{2, 8}, 2, 0};
    xbrtime_barrier();
    broadcast(buf, src.data(), 512, 1, /*root=*/1);
    xbrtime_barrier();
    hier_broadcast(buf, src.data(), 512, 1, /*root=*/1, shape);
    xbrtime_barrier();

    const std::uint64_t t0 = pe.clock().cycles();
    broadcast(buf, src.data(), 512, 1, /*root=*/1);
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();
    hier_broadcast(buf, src.data(), 512, 1, /*root=*/1, shape);
    xbrtime_barrier();
    const std::uint64_t t2 = pe.clock().cycles();
    if (pe.rank() == 0) {
      flat_cycles = t1 - t0;
      hier_cycles = t2 - t1;
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_LT(hier_cycles, flat_cycles);
}

// ---------------------------------------------------------------------------
// Satellite-2 regression: kHier-dispatched nbi collectives must return a
// LIVE CollReq (deferred tail) and push chunks through the pipelined engine,
// not run the blocking schedule inline and hand back a completed handle.
// ---------------------------------------------------------------------------

TEST(HierarchyNbiTest, BroadcastNbiDefersCompletion) {
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x8";
  config.coll_algo = "hier";
  Machine machine(config);
  reset_coll_pipeline_counters();
  bool done_before_wait = true;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(512 * sizeof(long)));
    std::vector<long> src(512);
    for (std::size_t i = 0; i < 512; ++i) src[i] = static_cast<long>(i) + 7;
    xbrtime_barrier();
    CollReq req = xbr_broadcast_nbi(dest, src.data(), 512, 1, /*root=*/0);
    if (pe.rank() == 0) done_before_wait = req.done();
    req.wait();
    for (std::size_t i = 0; i < 512; ++i) {
      EXPECT_EQ(dest[i], static_cast<long>(i) + 7) << "pe=" << pe.rank();
    }
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
  EXPECT_FALSE(done_before_wait);
  const CollPipelineCounters after = coll_pipeline_counters();
  EXPECT_GT(after.chunks, 0u);
  EXPECT_GT(after.waits, 0u);
  EXPECT_EQ(after.collectives, 8u);  // one issue per PE
}

TEST(HierarchyNbiTest, FcollectNbiDefersCompletion) {
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x8";
  config.coll_algo = "hier";
  Machine machine(config);
  reset_coll_pipeline_counters();
  bool done_before_wait = true;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(8 * 64 * sizeof(long)));
    std::vector<long> src(64);
    for (std::size_t i = 0; i < 64; ++i) {
      src[i] = pe.rank() * 1000 + static_cast<long>(i);
    }
    xbrtime_barrier();
    CollReq req = xbr_fcollect_nbi(dest, src.data(), 64);
    if (pe.rank() == 0) done_before_wait = req.done();
    req.wait();
    for (int p = 0; p < 8; ++p) {
      for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(dest[static_cast<std::size_t>(p) * 64 + i],
                  p * 1000 + static_cast<long>(i))
            << "pe=" << pe.rank();
      }
    }
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
  EXPECT_FALSE(done_before_wait);
  const CollPipelineCounters after = coll_pipeline_counters();
  EXPECT_GT(after.chunks, 0u);
  EXPECT_GT(after.waits, 0u);
}

}  // namespace
}  // namespace xbgas
