#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/api_c.hpp"
#include "collectives/baseline.hpp"
#include "collectives/collectives.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::kPeCounts;
using testing::run_spmd;

/// Property: each PE receives exactly its pe_msgs[rank] elements, taken
/// from src at pe_disp[rank] on the root, regardless of root choice.
void check_scatter(int n_pes, int root, const std::vector<int>& msgs) {
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(n_pes));
  std::vector<int> disp(msgs.size());
  std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
  const auto total = static_cast<std::size_t>(
      std::accumulate(msgs.begin(), msgs.end(), 0));

  run_spmd(n_pes, [&](PeContext& pe) {
    const int me = pe.rank();
    // Root's source: value encodes global element index.
    std::vector<long> src(total);
    for (std::size_t i = 0; i < total; ++i) {
      src[i] = 5000 + static_cast<long>(i);
    }
    const auto mine = static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
    std::vector<long> dest(mine + 2, -99);  // +2 sentinel tail

    xbrtime_barrier();
    scatter(dest.data(), src.data(), msgs.data(), disp.data(), total, root);

    for (std::size_t i = 0; i < mine; ++i) {
      EXPECT_EQ(dest[i],
                5000 + disp[static_cast<std::size_t>(me)] + static_cast<long>(i))
          << "n=" << n_pes << " root=" << root << " pe=" << me << " i=" << i;
    }
    EXPECT_EQ(dest[mine], -99);
    EXPECT_EQ(dest[mine + 1], -99);
    xbrtime_barrier();
  });
}

std::vector<int> uniform(int n, int c) {
  return std::vector<int>(static_cast<std::size_t>(n), c);
}

TEST(ScatterTest, UniformCountsAllPeCountsAndRoots) {
  for (const int n : kPeCounts) {
    for (int root = 0; root < n; ++root) {
      check_scatter(n, root, uniform(n, 4));
    }
  }
}

TEST(ScatterTest, VariableCounts) {
  // The paper's headline scatter feature: a distinct number of elements per
  // PE (§4.5).
  check_scatter(4, 0, {1, 5, 2, 8});
  check_scatter(5, 3, {7, 1, 4, 2, 6});
  check_scatter(8, 6, {3, 0, 5, 1, 0, 9, 2, 4});
}

TEST(ScatterTest, ZeroCountPes) {
  check_scatter(4, 1, {0, 6, 0, 2});
  check_scatter(3, 2, {0, 0, 5});
}

TEST(ScatterTest, SinglePe) { check_scatter(1, 0, {9}); }

TEST(ScatterTest, NonZeroRootNonContiguousSubtrees) {
  // The paper's §4.5 worked example: 7 PEs, root 4 — virtual-rank
  // reordering must keep subtree data contiguous.
  check_scatter(7, 4, {2, 3, 1, 4, 2, 5, 3});
}

TEST(ScatterTest, MatchesLinearBaseline) {
  for (const int n : {3, 6}) {
    run_spmd(n, [&](PeContext& pe) {
      std::vector<int> msgs(static_cast<std::size_t>(n));
      std::vector<int> disp(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) msgs[static_cast<std::size_t>(r)] = r + 1;
      std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
      const auto total = static_cast<std::size_t>(n * (n + 1) / 2);
      std::vector<int> src(total);
      std::iota(src.begin(), src.end(), 0);
      const auto mine =
          static_cast<std::size_t>(msgs[static_cast<std::size_t>(pe.rank())]);
      std::vector<int> via_tree(mine), via_linear(mine);

      xbrtime_barrier();
      scatter(via_tree.data(), src.data(), msgs.data(), disp.data(), total, 1);
      linear_scatter(via_linear.data(), src.data(), msgs.data(), disp.data(),
                     total, 1);
      EXPECT_EQ(via_tree, via_linear);
      xbrtime_barrier();
    });
  }
}

TEST(ScatterTest, SumMismatchThrows) {
  Machine machine(testing::test_config(2));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 const int msgs[2] = {2, 2};
                 const int disp[2] = {0, 2};
                 int src[4] = {};
                 int dest[2] = {};
                 scatter(dest, src, msgs, disp, /*nelems=*/5, 0);
               }),
               Error);
}

TEST(ScatterTest, NegativeCountThrows) {
  Machine machine(testing::test_config(2));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 const int msgs[2] = {-1, 3};
                 const int disp[2] = {0, 0};
                 int src[2] = {};
                 int dest[4] = {};
                 scatter(dest, src, msgs, disp, 2, 0);
               }),
               Error);
}

TEST(ScatterTest, TypedCApiEntryPoint) {
  run_spmd(3, [&](PeContext& pe) {
    const int msgs[3] = {2, 2, 2};
    const int disp[3] = {0, 2, 4};
    short src[6] = {10, 11, 20, 21, 30, 31};
    short dest[2] = {-1, -1};
    xbrtime_barrier();
    xbrtime_short_scatter(dest, src, msgs, disp, 6, 0);
    EXPECT_EQ(dest[0], (pe.rank() + 1) * 10);
    EXPECT_EQ(dest[1], (pe.rank() + 1) * 10 + 1);
    xbrtime_barrier();
  });
}

}  // namespace
}  // namespace xbgas
