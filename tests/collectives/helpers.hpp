#pragma once

// Shared scaffolding for the collectives test suite: build a small machine,
// run an SPMD body with the runtime initialized, and sweep PE counts
// (including non-powers-of-two, which exercise the vir_rank < vir_part
// guard of Algorithms 1-4).

#include <functional>

#include "machine/machine.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas::testing {

inline MachineConfig test_config(int n_pes) {
  MachineConfig config;
  config.n_pes = n_pes;
  config.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  return config;
}

/// Run `body` on a fresh machine with xbrtime initialized on every PE.
inline void run_spmd(int n_pes, const std::function<void(PeContext&)>& body) {
  Machine machine(test_config(n_pes));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    body(pe);
    xbrtime_close();
  });
}

/// PE counts exercised by the sweeps: powers of two, the awkward in-between
/// sizes, and the paper's simulation sizes.
inline const int kPeCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};

}  // namespace xbgas::testing
