#include "collectives/tuner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

MachineConfig tuner_base() {
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x16";
  config.net.per_hop_cycles = 50;
  return config;
}

const std::vector<std::size_t> kSizes = {64, 2048};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TunerTest, SweepsEveryCandidateAndPicksWinners) {
  std::vector<TuneMeasurement> measurements;
  const MachineConfig base = tuner_base();
  const std::vector<TuneCandidate> cands = default_tune_candidates(base);
  // tree r{2,4,8} + ring chunk{0,256,2048} + hier r{2,4,8} on a cluster
  ASSERT_EQ(cands.size(), 9u);
  const TuneTable table = build_tune_table(base, kSizes, cands, &measurements);
  // One winner per (kind, size) point, one sample per (point, candidate).
  EXPECT_EQ(table.size(), 4u * kSizes.size());
  EXPECT_EQ(measurements.size(), cands.size() * 4u * kSizes.size());
  for (const TuneMeasurement& m : measurements) {
    EXPECT_GT(m.cycles, 0u) << "unmeasured candidate";
  }
  // Every point resolves, and the winner really is the measured argmin.
  for (const TuneMeasurement& m : measurements) {
    const TuneEntry* e = table.lookup(m.kind, base.n_pes, m.bytes);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->n_pes, base.n_pes);
  }
}

TEST(TunerTest, RoundTripPreservesDecisions) {
  const MachineConfig base = tuner_base();
  const TuneTable table = build_tune_table(base, kSizes);
  const std::string path = "tuner_roundtrip.table";
  table.save(path);

  // Reload through the config surface, exactly as --coll-tune-table does.
  MachineConfig loaded_config = base;
  loaded_config.coll_tune_table = path;
  const CollectivePolicy direct = [&] {
    CollectivePolicy p(base);
    p.set_tune_table(table);
    return p;
  }();
  const CollectivePolicy reloaded(loaded_config);
  EXPECT_EQ(reloaded.tune_table().size(), table.size());

  for (const CollKind kind :
       {CollKind::kBroadcast, CollKind::kReduce, CollKind::kAllreduce,
        CollKind::kAllgather}) {
    for (const std::size_t nelems : {8u, 64u, 500u, 2048u, 100000u}) {
      const CollDecision a =
          direct.decide(kind, base.n_pes, nelems, sizeof(long));
      const CollDecision b =
          reloaded.decide(kind, base.n_pes, nelems, sizeof(long));
      EXPECT_EQ(a.algo, b.algo) << "nelems=" << nelems;
      EXPECT_EQ(a.radix, b.radix) << "nelems=" << nelems;
      EXPECT_EQ(a.chunk, b.chunk) << "nelems=" << nelems;
      EXPECT_EQ(a.tuned, b.tuned) << "nelems=" << nelems;
      EXPECT_TRUE(a.tuned) << "nelems=" << nelems;
    }
  }

  // save(load(save(x))) is bytewise stable.
  const std::string path2 = "tuner_roundtrip2.table";
  TuneTable::load(path).save(path2);
  EXPECT_EQ(slurp(path), slurp(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(TunerTest, RunTwiceIsDeterministic) {
  const MachineConfig base = tuner_base();
  const TuneTable a = build_tune_table(base, kSizes);
  const TuneTable b = build_tune_table(base, kSizes);
  const std::string pa = "tuner_det_a.table";
  const std::string pb = "tuner_det_b.table";
  a.save(pa);
  b.save(pb);
  EXPECT_EQ(slurp(pa), slurp(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(TunerTest, MissFallsBackToModel) {
  const MachineConfig base = tuner_base();
  CollectivePolicy policy(base);
  policy.set_tune_table(build_tune_table(base, kSizes));
  reset_coll_tuner_counters();

  // Same machine shape: the table answers (nearest-log size match).
  const CollDecision hit =
      policy.decide(CollKind::kBroadcast, base.n_pes, 64, sizeof(long));
  EXPECT_TRUE(hit.tuned);

  // Different PE count: exact (kind, n_pes) key misses -> analytic model.
  const CollDecision miss =
      policy.decide(CollKind::kBroadcast, 5, 64, sizeof(long));
  EXPECT_FALSE(miss.tuned);
  EXPECT_NE(miss.algo, CollAlgo::kAuto);

  // Non-world communicators never consult the table.
  const CollDecision sub = policy.decide(CollKind::kBroadcast, base.n_pes, 64,
                                         sizeof(long), /*world=*/false);
  EXPECT_FALSE(sub.tuned);

  const CollTunerCounters counters = coll_tuner_counters();
  EXPECT_EQ(counters.hits, 1u);
  // Only the n_pes mismatch is a consultation that missed; non-world
  // dispatches never consult the table at all.
  EXPECT_EQ(counters.misses, 1u);
}

TEST(TunerTest, LoadRejectsMalformedTables) {
  const std::string path = "tuner_bad.table";
  {
    std::ofstream out(path);
    out << "not a tune table\n";
  }
  EXPECT_THROW(TuneTable::load(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(TuneTable::load("does_not_exist.table"), Error);
}

}  // namespace
}  // namespace xbgas
