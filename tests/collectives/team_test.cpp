#include "collectives/team.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "common/error.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::run_spmd;

TEST(TeamTest, ActiveSetMembershipAndRanks) {
  run_spmd(8, [&](PeContext& pe) {
    // Even PEs form one team, odd PEs another.
    Team team(pe.rank() % 2, 2, 4);
    EXPECT_EQ(team.n_pes(), 4);
    EXPECT_EQ(team.rank(), pe.rank() / 2);
    EXPECT_EQ(team.world_rank(team.rank()), pe.rank());
    EXPECT_TRUE(team.contains_world_rank(pe.rank()));
    EXPECT_FALSE(team.contains_world_rank((pe.rank() + 1) % 8));
  });
}

TEST(TeamTest, NonMemberConstructionThrows) {
  Machine machine(testing::test_config(4));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 Team team(0, 2, 2);  // PEs 0 and 2 only; 1 and 3 must throw
               }),
               Error);
}

TEST(TeamTest, ActiveSetMustFitWorld) {
  run_spmd(4, [&](PeContext&) {
    EXPECT_THROW(Team(2, 2, 3), Error);  // 2,4,6 but world is 4
    EXPECT_THROW(Team(0, 1, 5), Error);
    EXPECT_THROW(Team(0, 0, 2), Error);  // zero stride
  });
}

TEST(TeamTest, TeamBarrierOnlySynchronizesMembers) {
  run_spmd(6, [&](PeContext& pe) {
    if (pe.rank() < 3) {
      Team team(0, 1, 3);
      pe.clock().advance(static_cast<std::uint64_t>(pe.rank()) * 100);
      team.barrier();
      // Team members leave with the member max (+ barrier cost); PEs 3-5
      // never participate.
      EXPECT_GE(pe.clock().cycles(), 200u);
    }
    xbrtime_barrier();
  });
}

TEST(TeamTest, BroadcastWithinTeam) {
  run_spmd(8, [&](PeContext& pe) {
    auto* dest = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
    std::fill(dest, dest + 4, -1);
    xbrtime_barrier();

    if (pe.rank() % 2 == 0) {  // team of even world ranks
      Team team(0, 2, 4);
      int src[4] = {11, 22, 33, 44};
      broadcast(dest, src, 4, 1, /*team root=*/1, team);  // world rank 2
    }
    xbrtime_barrier();

    if (pe.rank() % 2 == 0) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(dest[i], 11 * (i + 1));
    } else {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(dest[i], -1);  // untouched
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(TeamTest, ReduceWithinTeam) {
  run_spmd(6, [&](PeContext& pe) {
    auto* src = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    *src = pe.rank();
    int out = -1;
    xbrtime_barrier();

    if (pe.rank() >= 2) {  // team = world ranks 2..5
      Team team(2, 1, 4);
      reduce<OpSum>(&out, src, 1, 1, /*team root=*/0, team);
      if (team.rank() == 0) {
        EXPECT_EQ(out, 2 + 3 + 4 + 5);
      } else {
        EXPECT_EQ(out, -1);
      }
    }
    xbrtime_barrier();
    xbrtime_free(src);
  });
}

TEST(TeamTest, DisjointTeamsRunConcurrently) {
  run_spmd(8, [&](PeContext& pe) {
    auto* dest = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    auto* src = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    *src = pe.rank() + 1;
    xbrtime_barrier();

    // Two disjoint halves each run their own reduction simultaneously.
    const int base = pe.rank() < 4 ? 0 : 4;
    Team team(base, 1, 4);
    reduce_all<OpSum>(dest, src, 1, 1, team);
    const int expected = base == 0 ? (1 + 2 + 3 + 4) : (5 + 6 + 7 + 8);
    EXPECT_EQ(*dest, expected);
    xbrtime_barrier();
    xbrtime_free(src);
    xbrtime_free(dest);
  });
}

TEST(TeamTest, GatherWithinTeamUsingStridedMembers) {
  run_spmd(8, [&](PeContext& pe) {
    if (pe.rank() % 2 != 0) {
      xbrtime_barrier();
      return;
    }
    Team team(0, 2, 4);
    const int msgs[4] = {1, 2, 1, 2};
    const int disp[4] = {0, 1, 3, 4};
    std::vector<long> src(2, pe.rank() * 10);
    if (msgs[team.rank()] == 2) src[1] = pe.rank() * 10 + 1;
    std::vector<long> dest(6, -5);
    gather(dest.data(), src.data(), msgs, disp, 6, 0, team);
    if (team.rank() == 0) {
      const std::vector<long> expected{0, 20, 21, 40, 60, 61};
      EXPECT_EQ(dest, expected);
    }
    xbrtime_barrier();
  });
}

TEST(TeamTest, SingletonTeam) {
  run_spmd(3, [&](PeContext& pe) {
    Team team(pe.rank(), 1, 1);
    EXPECT_EQ(team.n_pes(), 1);
    EXPECT_EQ(team.rank(), 0);
    auto* buf = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    int v = pe.rank() * 7;
    broadcast(buf, &v, 1, 1, 0, team);
    EXPECT_EQ(*buf, pe.rank() * 7);
    xbrtime_barrier();
    xbrtime_free(buf);
  });
}

TEST(TeamTest, SequentialTeamsReuseCleanly) {
  run_spmd(4, [&](PeContext& pe) {
    for (int round = 0; round < 3; ++round) {
      Team team(0, 1, 4);
      auto* buf = static_cast<int*>(xbrtime_malloc(sizeof(int)));
      int v = round * 100 + 5;  // broadcast from team rank `round`
      broadcast(buf, &v, 1, 1, round, team);
      EXPECT_EQ(*buf, round * 100 + 5);
      xbrtime_barrier();
      xbrtime_free(buf);
      (void)pe;
    }
  });
}

}  // namespace
}  // namespace xbgas
