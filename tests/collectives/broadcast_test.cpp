#include <gtest/gtest.h>

#include <vector>

#include "collectives/api_c.hpp"
#include "collectives/baseline.hpp"
#include "collectives/collectives.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::kPeCounts;
using testing::run_spmd;

/// Property: after broadcast, every PE's dest holds the root's values at
/// every strided position, and gap positions are untouched.
void check_broadcast(int n_pes, int root, std::size_t nelems, int stride) {
  run_spmd(n_pes, [&](PeContext& pe) {
    const std::size_t span =
        nelems == 0 ? 1 : (nelems - 1) * static_cast<std::size_t>(stride) + 1;
    auto* dest = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
    std::fill(dest, dest + span, -777L);
    // Root-private source (deliberately not symmetric).
    std::vector<long> src(span, 0);
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i * static_cast<std::size_t>(stride)] =
          1000 + static_cast<long>(i);
    }
    xbrtime_barrier();

    broadcast(dest, src.data(), nelems, stride, root);

    for (std::size_t i = 0; i < span; ++i) {
      if (nelems > 0 && i % static_cast<std::size_t>(stride) == 0 &&
          i / static_cast<std::size_t>(stride) < nelems) {
        EXPECT_EQ(dest[i],
                  1000 + static_cast<long>(i / static_cast<std::size_t>(stride)))
            << "pe=" << pe.rank() << " n=" << n_pes << " root=" << root
            << " pos=" << i;
      } else {
        EXPECT_EQ(dest[i], -777L) << "gap clobbered at " << i;
      }
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(BroadcastTest, AllPeCountsAndRoots) {
  for (const int n : kPeCounts) {
    for (int root = 0; root < n; ++root) {
      check_broadcast(n, root, 8, 1);
    }
  }
}

TEST(BroadcastTest, StridedVariants) {
  // The paper highlights stride support as an advantage over OpenSHMEM
  // (§4.7) — cover strides beyond 1 across awkward PE counts.
  for (const int n : {1, 3, 5, 8}) {
    for (const int stride : {2, 3, 7}) {
      check_broadcast(n, n - 1, 5, stride);
    }
  }
}

TEST(BroadcastTest, ZeroElements) {
  check_broadcast(4, 2, 0, 1);
}

TEST(BroadcastTest, SingleElementSinglePe) {
  check_broadcast(1, 0, 1, 1);
}

TEST(BroadcastTest, LargePayload) {
  check_broadcast(7, 3, 4096, 1);
}

TEST(BroadcastTest, DestEqualsSrcOnRootIsAllowed) {
  run_spmd(4, [&](PeContext&) {
    auto* buf = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
    for (int i = 0; i < 4; ++i) {
      buf[i] = xbrtime_mype() == 2 ? 50 + i : -1;
    }
    xbrtime_barrier();
    broadcast(buf, buf, 4, 1, /*root=*/2);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[i], 50 + i);
    xbrtime_barrier();
    xbrtime_free(buf);
  });
}

TEST(BroadcastTest, RepeatedBroadcastsFromRotatingRoots) {
  run_spmd(6, [&](PeContext&) {
    auto* dest = static_cast<int*>(xbrtime_malloc(sizeof(int)));
    for (int root = 0; root < 6; ++root) {
      int src = 900 + root;  // only meaningful on the root
      broadcast(dest, &src, 1, 1, root);
      EXPECT_EQ(*dest, 900 + root);
      // Standard SHMEM buffer-reuse contract: synchronize before the next
      // collective writes into dest again.
      xbrtime_barrier();
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(BroadcastTest, MatchesLinearBaseline) {
  for (const int n : {2, 5, 8}) {
    run_spmd(n, [&](PeContext&) {
      auto* via_tree = static_cast<int*>(xbrtime_malloc(16 * sizeof(int)));
      auto* via_linear = static_cast<int*>(xbrtime_malloc(16 * sizeof(int)));
      std::vector<int> src(16);
      for (int i = 0; i < 16; ++i) src[static_cast<std::size_t>(i)] = i * i;
      xbrtime_barrier();
      broadcast(via_tree, src.data(), 16, 1, 1 % n);
      linear_broadcast(via_linear, src.data(), 16, 1, 1 % n);
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(via_tree[i], via_linear[i]);
        EXPECT_EQ(via_tree[i], i * i);
      }
      xbrtime_barrier();
      xbrtime_free(via_linear);
      xbrtime_free(via_tree);
    });
  }
}

TEST(BroadcastTest, TypedCApiEntryPoint) {
  run_spmd(3, [&](PeContext&) {
    auto* dest = static_cast<double*>(xbrtime_malloc(2 * sizeof(double)));
    double src[2] = {2.5, -1.25};
    xbrtime_barrier();
    xbrtime_double_broadcast(dest, src, 2, 1, 0);
    EXPECT_DOUBLE_EQ(dest[0], 2.5);
    EXPECT_DOUBLE_EQ(dest[1], -1.25);
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(BroadcastTest, InvalidRootThrows) {
  Machine machine(testing::test_config(2));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 auto* d = static_cast<int*>(xbrtime_malloc(4));
                 int s = 0;
                 broadcast(d, &s, 1, 1, /*root=*/2);
               }),
               Error);
}

}  // namespace
}  // namespace xbgas
