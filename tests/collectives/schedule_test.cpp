#include "collectives/schedule.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

namespace xbgas {
namespace {

TEST(ScheduleTest, StageCountIsCeilLog2) {
  EXPECT_EQ(schedule_stages(1), 0);
  EXPECT_EQ(schedule_stages(2), 1);
  EXPECT_EQ(schedule_stages(3), 2);
  EXPECT_EQ(schedule_stages(8), 3);
  EXPECT_EQ(schedule_stages(9), 4);
  EXPECT_EQ(schedule_stages(12), 4);  // the paper's 12-core environment
}

TEST(ScheduleTest, FigureThreeEightPeTree) {
  // Paper Figure 3: the 8-PE binomial broadcast tree with recursive halving.
  // Stage 0: 0->4; stage 1: 0->2, 4->6; stage 2: 0->1, 2->3, 4->5, 6->7.
  const auto edges = broadcast_schedule(8);
  const std::vector<TreeEdge> expected = {
      {0, 0, 4}, {1, 0, 2}, {1, 4, 6},
      {2, 0, 1}, {2, 2, 3}, {2, 4, 5}, {2, 6, 7},
  };
  EXPECT_EQ(edges, expected);
}

TEST(ScheduleTest, BroadcastReachesEveryRankExactlyOnce) {
  for (int n = 1; n <= 33; ++n) {
    const auto edges = broadcast_schedule(n);
    EXPECT_EQ(edges.size(), static_cast<std::size_t>(n - 1));
    std::set<int> reached{0};
    for (const auto& e : edges) {
      // Sender must already hold the data when it sends.
      EXPECT_TRUE(reached.contains(e.from_vrank))
          << "n=" << n << " stage=" << e.stage << " from=" << e.from_vrank;
      // Receiver must not receive twice.
      EXPECT_FALSE(reached.contains(e.to_vrank));
      reached.insert(e.to_vrank);
    }
    EXPECT_EQ(reached.size(), static_cast<std::size_t>(n));
  }
}

TEST(ScheduleTest, BroadcastStagesAreOrdered) {
  const auto edges = broadcast_schedule(16);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1].stage, edges[i].stage);
  }
}

TEST(ScheduleTest, ReduceGathersEveryRankExactlyOnce) {
  for (int n = 1; n <= 33; ++n) {
    const auto edges = reduce_schedule(n);
    EXPECT_EQ(edges.size(), static_cast<std::size_t>(n - 1));
    // Every non-root rank contributes (appears as from) exactly once, and
    // after it has contributed it never acts again.
    std::set<int> consumed;
    for (const auto& e : edges) {
      EXPECT_FALSE(consumed.contains(e.from_vrank)) << "n=" << n;
      EXPECT_FALSE(consumed.contains(e.to_vrank)) << "n=" << n;
      consumed.insert(e.from_vrank);
    }
    EXPECT_EQ(consumed.size(), static_cast<std::size_t>(n - 1));
    EXPECT_FALSE(consumed.contains(0));  // root survives
  }
}

TEST(ScheduleTest, ReduceIsBroadcastReversed) {
  // For power-of-two sizes the reduce tree is the broadcast tree with
  // direction flipped and stages reversed.
  for (int n : {2, 4, 8, 16, 32}) {
    auto fwd = broadcast_schedule(n);
    auto rev = reduce_schedule(n);
    ASSERT_EQ(fwd.size(), rev.size());
    const int stages = schedule_stages(n);
    std::multiset<std::tuple<int, int, int>> fwd_set, rev_set;
    for (const auto& e : fwd) {
      fwd_set.insert({e.stage, e.from_vrank, e.to_vrank});
    }
    for (const auto& e : rev) {
      rev_set.insert({stages - 1 - e.stage, e.to_vrank, e.from_vrank});
    }
    EXPECT_EQ(fwd_set, rev_set) << "n=" << n;
  }
}

TEST(ScheduleTest, MaxStageParallelismDoubles) {
  // Recursive halving: stage s of the broadcast has 2^s concurrent
  // transfers (power-of-two case) — the congestion-minimizing property.
  const auto edges = broadcast_schedule(32);
  std::vector<int> per_stage(5, 0);
  for (const auto& e : edges) ++per_stage[static_cast<std::size_t>(e.stage)];
  EXPECT_EQ(per_stage, (std::vector<int>{1, 2, 4, 8, 16}));
}

TEST(ScheduleTest, SingleAndTwoPeEdgeCases) {
  EXPECT_TRUE(broadcast_schedule(1).empty());
  EXPECT_TRUE(reduce_schedule(1).empty());
  const auto two = broadcast_schedule(2);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0], (TreeEdge{0, 0, 1}));
}

// -- k-nomial generalization ------------------------------------------------

TEST(KnomialScheduleTest, StageCountIsCeilLogRadix) {
  EXPECT_EQ(knomial_stages(1, 4), 0);
  EXPECT_EQ(knomial_stages(4, 4), 1);
  EXPECT_EQ(knomial_stages(5, 4), 2);
  EXPECT_EQ(knomial_stages(16, 4), 2);
  EXPECT_EQ(knomial_stages(17, 4), 3);
  EXPECT_EQ(knomial_stages(9, 3), 2);
  EXPECT_EQ(knomial_stages(64, 8), 2);
}

TEST(KnomialScheduleTest, RadixTwoReproducesBinomialEdgeForEdge) {
  for (int n = 1; n <= 33; ++n) {
    EXPECT_EQ(knomial_broadcast_schedule(n, 2), broadcast_schedule(n))
        << "n=" << n;
    EXPECT_EQ(knomial_reduce_schedule(n, 2), reduce_schedule(n)) << "n=" << n;
  }
}

TEST(KnomialScheduleTest, BroadcastReachesEveryRankExactlyOnce) {
  for (const int radix : {3, 4, 8}) {
    for (int n = 1; n <= 40; ++n) {
      const auto edges = knomial_broadcast_schedule(n, radix);
      EXPECT_EQ(edges.size(), static_cast<std::size_t>(n - 1));
      std::set<int> reached{0};
      for (const auto& e : edges) {
        EXPECT_TRUE(reached.contains(e.from_vrank))
            << "n=" << n << " radix=" << radix << " stage=" << e.stage;
        EXPECT_FALSE(reached.contains(e.to_vrank));
        reached.insert(e.to_vrank);
      }
      EXPECT_EQ(reached.size(), static_cast<std::size_t>(n));
    }
  }
}

TEST(KnomialScheduleTest, ReduceIsBroadcastReversed) {
  for (const int radix : {3, 4, 8}) {
    for (const int n : {5, 9, 16, 27, 33}) {
      const auto bcast = knomial_broadcast_schedule(n, radix);
      const auto reduce = knomial_reduce_schedule(n, radix);
      ASSERT_EQ(bcast.size(), reduce.size()) << "n=" << n << " r=" << radix;
      // Same edge set with from/to swapped; stages mirror across the L
      // stages (broadcast stage s <-> reduce stage L-1-s).
      const int stages = knomial_stages(n, radix);
      std::set<std::tuple<int, int, int>> fwd, rev;
      for (const auto& e : bcast) {
        fwd.insert({e.stage, e.from_vrank, e.to_vrank});
      }
      for (const auto& e : reduce) {
        rev.insert({stages - 1 - e.stage, e.to_vrank, e.from_vrank});
      }
      EXPECT_EQ(fwd, rev) << "n=" << n << " r=" << radix;
    }
  }
}

TEST(KnomialScheduleTest, HigherRadixNeedsFewerStages) {
  // The hierarchy trade: radix 8 on 64 PEs is 2 stages of 7-way fan-out
  // instead of 6 stages of pairwise exchange.
  const auto r8 = knomial_broadcast_schedule(64, 8);
  int max_stage = 0;
  for (const auto& e : r8) max_stage = std::max(max_stage, e.stage);
  EXPECT_EQ(max_stage + 1, 2);
  EXPECT_EQ(knomial_stages(64, 8), 2);
  EXPECT_EQ(knomial_stages(64, 2), 6);
}

}  // namespace
}  // namespace xbgas
