#include "collectives/ring.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "collectives/team.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::kPeCounts;
using testing::run_spmd;

void check_ring_broadcast(int n_pes, int root, std::size_t nelems, int stride,
                          std::size_t segments) {
  run_spmd(n_pes, [&](PeContext& pe) {
    const std::size_t span =
        nelems == 0 ? 1 : (nelems - 1) * static_cast<std::size_t>(stride) + 1;
    auto* dest = static_cast<long*>(xbrtime_malloc(span * sizeof(long)));
    std::fill(dest, dest + span, -3);
    std::vector<long> src(span, 0);
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i * static_cast<std::size_t>(stride)] = 2000 + static_cast<long>(i);
    }
    xbrtime_barrier();

    ring_broadcast(dest, src.data(), nelems, stride, root, world_comm(),
                   segments);

    for (std::size_t i = 0; i < nelems; ++i) {
      const std::size_t at = i * static_cast<std::size_t>(stride);
      EXPECT_EQ(dest[at], 2000 + static_cast<long>(i))
          << "pe=" << pe.rank() << " n=" << n_pes << " root=" << root
          << " seg=" << segments << " i=" << i;
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(RingBroadcastTest, AllPeCountsAndRoots) {
  for (const int n : kPeCounts) {
    for (int root = 0; root < n; ++root) {
      check_ring_broadcast(n, root, 16, 1, 4);
    }
  }
}

TEST(RingBroadcastTest, SegmentCountSweep) {
  // Segment counts beyond nelems, 1 (plain chain), and odd divisors.
  for (const std::size_t segments : {std::size_t{1}, std::size_t{3},
                                     std::size_t{7}, std::size_t{16},
                                     std::size_t{100}}) {
    check_ring_broadcast(5, 2, 16, 1, segments);
  }
}

TEST(RingBroadcastTest, HeuristicSegments) {
  check_ring_broadcast(6, 1, 2048, 1, /*segments=*/0);
}

TEST(RingBroadcastTest, Strided) {
  check_ring_broadcast(4, 3, 9, 3, 2);
}

TEST(RingBroadcastTest, ZeroElementsAndSinglePe) {
  check_ring_broadcast(4, 0, 0, 1, 4);
  check_ring_broadcast(1, 0, 8, 1, 2);
}

TEST(RingBroadcastTest, MatchesBinomialResult) {
  run_spmd(7, [&](PeContext&) {
    auto* via_ring = static_cast<int*>(xbrtime_malloc(64 * sizeof(int)));
    auto* via_tree = static_cast<int*>(xbrtime_malloc(64 * sizeof(int)));
    std::vector<int> src(64);
    for (int i = 0; i < 64; ++i) src[static_cast<std::size_t>(i)] = i * 3;
    xbrtime_barrier();
    ring_broadcast(via_ring, src.data(), 64, 1, 4);
    broadcast(via_tree, src.data(), 64, 1, 4);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(via_ring[i], via_tree[i]);
    xbrtime_barrier();
    xbrtime_free(via_tree);
    xbrtime_free(via_ring);
  });
}

TEST(RingBroadcastTest, WorksOverTeams) {
  run_spmd(8, [&](PeContext& pe) {
    auto* dest = static_cast<int*>(xbrtime_malloc(8 * sizeof(int)));
    std::fill(dest, dest + 8, -1);
    xbrtime_barrier();
    if (pe.rank() % 2 == 1) {  // odd-PE team
      Team odds(1, 2, 4);
      int src[8];
      for (int i = 0; i < 8; ++i) src[i] = 7 * i;
      ring_broadcast(dest, src, 8, 1, /*team root=*/2, odds, 2);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dest[i], 7 * i);
    }
    xbrtime_barrier();
    if (pe.rank() % 2 == 0) {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dest[i], -1);
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(RingBroadcastTest, PipelineBeatsTreeForLargeMessagesOnFastFabric) {
  // The §7 rationale: on an uncongested fabric, pipelining amortizes
  // serialization and beats the tree's forward-the-whole-payload critical
  // path for large messages.
  MachineConfig config = testing::test_config(8);
  config.net.fabric_message_cycles = 0;
  config.net.fabric_bytes_per_cycle = 1e9;
  Machine machine(config);
  std::uint64_t tree_cycles = 0, ring_cycles = 0;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    constexpr std::size_t kElems = 16384;
    auto* buf = static_cast<long*>(xbrtime_malloc(kElems * sizeof(long)));
    auto* src = static_cast<long*>(xbrtime_malloc(kElems * sizeof(long)));
    for (std::size_t i = 0; i < kElems; ++i) src[i] = 5;
    xbrtime_barrier();

    // Warm the caches so both variants see the same memory state (each
    // algorithm reads a different forwarding set).
    broadcast(buf, src, kElems, 1, 0);
    xbrtime_barrier();
    ring_broadcast(buf, src, kElems, 1, 0);
    xbrtime_barrier();

    const std::uint64_t t0 = pe.clock().cycles();
    broadcast(buf, src, kElems, 1, 0);
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();
    ring_broadcast(buf, src, kElems, 1, 0);
    xbrtime_barrier();
    const std::uint64_t t2 = pe.clock().cycles();
    if (pe.rank() == 0) {
      tree_cycles = t1 - t0;
      ring_cycles = t2 - t1;
    }
    xbrtime_barrier();
    xbrtime_free(src);
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_LT(ring_cycles, tree_cycles);
}

}  // namespace
}  // namespace xbgas
