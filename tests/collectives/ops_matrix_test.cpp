// Op x type coverage matrix (ISSUE PR 3, satellite 2).
//
// Every reduction operator in ops.hpp — OpSum, OpProd, OpMin, OpMax for all
// 24 Table-1 types, OpBand/OpBor/OpBxor for the 21 integral types — run
// through the policy-dispatched reduce/reduce_all against a sequential
// golden fold. Input values are kept tiny (sums <= 24, products <= 16) so
// even the 8-bit types stay in range and floating-point arithmetic on them
// is exact. A separate test pins down float-sum determinism: for a fixed
// (seed, n_pes) the reduction is bitwise reproducible run over run, for
// every algorithm family.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collectives/composed.hpp"
#include "collectives/policy.hpp"
#include "xbrtime/types.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::run_spmd;

constexpr std::size_t kNelems = 9;
constexpr int kPes = 6;  // non-power-of-two: exercises the vrank guard

/// Arithmetic-op inputs: 0..3 for sum/min/max, 1..2 for prod.
template <class T>
T arith_val(int rank, std::size_t i) {
  return static_cast<T>((static_cast<std::size_t>(rank) * 7 + i * 3) % 4);
}
template <class T>
T prod_val(int rank, std::size_t i) {
  return static_cast<T>(1 + (static_cast<std::size_t>(rank) + i) % 2);
}

/// Bitwise-op inputs: a byte-sized pattern valid for every integral type.
template <class T>
T bit_val(int rank, std::size_t i) {
  return static_cast<T>((static_cast<std::size_t>(rank) * 29 + i * 7 + 0x5A) %
                        0x60);
}

template <class Op, class T, class ValueFn>
void check_reduce(PeContext& pe, int n, ValueFn value, const char* op_name) {
  auto* dest = static_cast<T*>(xbrtime_malloc(kNelems * sizeof(T)));
  std::vector<T> src(kNelems);
  for (std::size_t i = 0; i < kNelems; ++i) src[i] = value(pe.rank(), i);
  xbrtime_barrier();
  reduce<Op>(dest, src.data(), kNelems, 1, /*root=*/1);
  if (pe.rank() == 1) {
    for (std::size_t i = 0; i < kNelems; ++i) {
      T golden = value(0, i);
      for (int r = 1; r < n; ++r) golden = Op::apply(golden, value(r, i));
      ASSERT_EQ(dest[i], golden) << op_name << " reduce i=" << i;
    }
  }
  xbrtime_barrier();
  reduce_all<Op>(dest, src.data(), kNelems, 1);
  for (std::size_t i = 0; i < kNelems; ++i) {
    T golden = value(0, i);
    for (int r = 1; r < n; ++r) golden = Op::apply(golden, value(r, i));
    ASSERT_EQ(dest[i], golden)
        << op_name << " reduce_all pe=" << pe.rank() << " i=" << i;
  }
  xbrtime_barrier();
  xbrtime_free(dest);
}

template <class T>
void arith_ops_body(PeContext& pe) {
  check_reduce<OpSum, T>(pe, kPes, arith_val<T>, "sum");
  check_reduce<OpProd, T>(pe, kPes, prod_val<T>, "prod");
  check_reduce<OpMin, T>(pe, kPes, arith_val<T>, "min");
  check_reduce<OpMax, T>(pe, kPes, arith_val<T>, "max");
}

template <class T>
void bitwise_ops_body(PeContext& pe) {
  check_reduce<OpBand, T>(pe, kPes, bit_val<T>, "band");
  check_reduce<OpBor, T>(pe, kPes, bit_val<T>, "bor");
  check_reduce<OpBxor, T>(pe, kPes, bit_val<T>, "bxor");
}

// One test per Table-1 type; all four arithmetic ops per test.
#define XBGAS_OPS_MATRIX_ARITH(NAME, TYPE)                       \
  TEST(OpsMatrixTest, Arith_##NAME) {                            \
    run_spmd(kPes, [](PeContext& pe) { arith_ops_body<TYPE>(pe); }); \
  }
XBGAS_FOREACH_TYPE(XBGAS_OPS_MATRIX_ARITH)
#undef XBGAS_OPS_MATRIX_ARITH

// Bitwise ops exist only for the integral subset (paper §4.4).
#define XBGAS_OPS_MATRIX_BITWISE(NAME, TYPE)                       \
  TEST(OpsMatrixTest, Bitwise_##NAME) {                            \
    run_spmd(kPes, [](PeContext& pe) { bitwise_ops_body<TYPE>(pe); }); \
  }
XBGAS_FOREACH_INT_TYPE(XBGAS_OPS_MATRIX_BITWISE)
#undef XBGAS_OPS_MATRIX_BITWISE

/// One float reduce_all run; returns rank 0's result bit patterns.
std::vector<std::uint32_t> float_sum_bits(int n, const std::string& algo,
                                          std::uint64_t seed) {
  MachineConfig config = testing::test_config(n);
  config.coll_algo = algo;
  Machine machine(config);
  std::vector<std::uint32_t> bits(kNelems, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<float*>(xbrtime_malloc(kNelems * sizeof(float)));
    std::vector<float> src(kNelems);
    for (std::size_t i = 0; i < kNelems; ++i) {
      // Fractional values: any reordering of the sum would change the bits.
      src[i] = 0.1f * static_cast<float>(pe.rank() + 1) +
               0.013f * static_cast<float>((seed + i) % 17);
    }
    xbrtime_barrier();
    reduce_all<OpSum>(dest, src.data(), kNelems, 1);
    if (pe.rank() == 0) {
      for (std::size_t i = 0; i < kNelems; ++i) {
        std::memcpy(&bits[i], &dest[i], sizeof(float));
      }
    }
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
  return bits;
}

TEST(OpsMatrixTest, FloatSumBitwiseDeterministicPerAlgo) {
  // For a fixed (seed, n_pes), repeated runs must agree bit for bit —
  // each algorithm family combines in a fixed order (trees by stage,
  // the ring in fixed ring order), so there is no run-to-run reordering.
  constexpr std::uint64_t kSeed = 42;
  for (const char* algo : {"auto", "tree", "ring"}) {
    for (const int n : {3, 6, 8}) {
      const auto first = float_sum_bits(n, algo, kSeed);
      const auto second = float_sum_bits(n, algo, kSeed);
      EXPECT_EQ(first, second) << "algo=" << algo << " n_pes=" << n;
    }
  }
}

}  // namespace
}  // namespace xbgas
