#include "collectives/vrank.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

TEST(VrankTest, PaperTableTwoExample) {
  // 7 PEs, root 4: logical 0..6 -> virtual 3,4,5,6,0,1,2 (paper Table 2).
  const int expected[] = {3, 4, 5, 6, 0, 1, 2};
  for (int lr = 0; lr < 7; ++lr) {
    EXPECT_EQ(virtual_rank(lr, 4, 7), expected[lr]) << "log_rank " << lr;
  }
}

TEST(VrankTest, RootAlwaysGetsVirtualZero) {
  for (int n = 1; n <= 16; ++n) {
    for (int root = 0; root < n; ++root) {
      EXPECT_EQ(virtual_rank(root, root, n), 0);
    }
  }
}

TEST(VrankTest, MappingIsABijection) {
  for (int n = 1; n <= 16; ++n) {
    for (int root = 0; root < n; ++root) {
      std::uint32_t seen = 0;
      for (int lr = 0; lr < n; ++lr) {
        const int vr = virtual_rank(lr, root, n);
        ASSERT_GE(vr, 0);
        ASSERT_LT(vr, n);
        seen |= (1u << vr);
      }
      EXPECT_EQ(seen, (n == 32 ? ~0u : (1u << n) - 1));
    }
  }
}

TEST(VrankTest, LogicalRankInverts) {
  for (int n = 1; n <= 16; ++n) {
    for (int root = 0; root < n; ++root) {
      for (int lr = 0; lr < n; ++lr) {
        EXPECT_EQ(logical_rank(virtual_rank(lr, root, n), root, n), lr);
      }
      for (int vr = 0; vr < n; ++vr) {
        EXPECT_EQ(virtual_rank(logical_rank(vr, root, n), root, n), vr);
      }
    }
  }
}

TEST(VrankTest, ConsecutiveVirtualRanksAreConsecutiveLogical) {
  // Virtual ranks walk logical ranks cyclically starting at the root — the
  // property recursive halving relies on for locality (§4.3).
  const int n = 11, root = 7;
  for (int vr = 0; vr + 1 < n; ++vr) {
    const int a = logical_rank(vr, root, n);
    const int b = logical_rank(vr + 1, root, n);
    EXPECT_EQ((a + 1) % n, b);
  }
}

TEST(VrankTest, RangeChecks) {
  EXPECT_THROW(virtual_rank(0, 0, 0), Error);
  EXPECT_THROW(virtual_rank(4, 0, 4), Error);
  EXPECT_THROW(virtual_rank(0, 4, 4), Error);
  EXPECT_THROW(logical_rank(4, 0, 4), Error);
}

}  // namespace
}  // namespace xbgas
