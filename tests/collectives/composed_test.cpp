#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/composed.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::run_spmd;

TEST(ComposedTest, ReduceAllLandsEverywhere) {
  for (const int n : {1, 2, 5, 8}) {
    run_spmd(n, [&](PeContext& pe) {
      auto* src = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
      auto* dest = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
      for (int i = 0; i < 4; ++i) src[i] = pe.rank() + i;
      xbrtime_barrier();
      reduce_all<OpSum>(dest, src, 4, 1);
      // Every PE (not just the root) holds the reduction (§4.7).
      const int ranks_sum = n * (n - 1) / 2;
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(dest[i], ranks_sum + n * i) << "pe=" << pe.rank();
      }
      xbrtime_barrier();
      xbrtime_free(dest);
      xbrtime_free(src);
    });
  }
}

TEST(ComposedTest, ReduceAllSumConvenience) {
  run_spmd(3, [&](PeContext& pe) {
    auto* src = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    auto* dest = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    *src = (pe.rank() + 1) * 100;
    xbrtime_barrier();
    reduce_all_sum(dest, src, 1, 1);
    EXPECT_EQ(*dest, 600);
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_free(src);
  });
}

TEST(ComposedTest, FcollectConcatenatesInRankOrder) {
  for (const int n : {1, 4, 7}) {
    run_spmd(n, [&](PeContext& pe) {
      constexpr std::size_t kPer = 3;
      auto* dest = static_cast<int*>(
          xbrtime_malloc(kPer * static_cast<std::size_t>(n) * sizeof(int)));
      int src[kPer];
      for (std::size_t i = 0; i < kPer; ++i) {
        src[i] = pe.rank() * 10 + static_cast<int>(i);
      }
      xbrtime_barrier();
      fcollect(dest, src, kPer);
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < kPer; ++i) {
          EXPECT_EQ(dest[static_cast<std::size_t>(r) * kPer + i],
                    r * 10 + static_cast<int>(i))
              << "pe=" << pe.rank() << " r=" << r;
        }
      }
      xbrtime_barrier();
      xbrtime_free(dest);
    });
  }
}

TEST(ComposedTest, CollectWithVariableCounts) {
  run_spmd(4, [&](PeContext& pe) {
    const int msgs[4] = {2, 0, 3, 1};
    const int disp[4] = {0, 2, 2, 5};
    const std::size_t total = 6;
    auto* dest = static_cast<int*>(xbrtime_malloc(total * sizeof(int)));
    std::vector<int> src(3);
    for (int i = 0; i < msgs[pe.rank()]; ++i) {
      src[static_cast<std::size_t>(i)] = pe.rank() * 100 + i;
    }
    xbrtime_barrier();
    collect(dest, src.data(), msgs, disp, total);
    const int expected[6] = {0, 1, 200, 201, 202, 300};
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(dest[i], expected[i]) << "pe=" << pe.rank() << " i=" << i;
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(ComposedTest, AlltoallPersonalizedExchange) {
  for (const int n : {1, 2, 4, 6}) {
    run_spmd(n, [&](PeContext& pe) {
      constexpr std::size_t kSeg = 2;
      const auto un = static_cast<std::size_t>(n);
      auto* dest =
          static_cast<int*>(xbrtime_malloc(un * kSeg * sizeof(int)));
      std::vector<int> src(un * kSeg);
      for (int d = 0; d < n; ++d) {
        for (std::size_t i = 0; i < kSeg; ++i) {
          // Value encodes (sender, destination, index).
          src[static_cast<std::size_t>(d) * kSeg + i] =
              pe.rank() * 100 + d * 10 + static_cast<int>(i);
        }
      }
      std::fill(dest, dest + un * kSeg, -1);
      xbrtime_barrier();
      alltoall(dest, src.data(), kSeg);
      for (int s = 0; s < n; ++s) {
        for (std::size_t i = 0; i < kSeg; ++i) {
          EXPECT_EQ(dest[static_cast<std::size_t>(s) * kSeg + i],
                    s * 100 + pe.rank() * 10 + static_cast<int>(i))
              << "pe=" << pe.rank() << " from=" << s;
        }
      }
      xbrtime_barrier();
      xbrtime_free(dest);
    });
  }
}

TEST(ComposedTest, AlltoallZeroElements) {
  run_spmd(3, [&](PeContext&) {
    auto* dest = static_cast<int*>(xbrtime_malloc(3 * sizeof(int)));
    std::vector<int> src(3, 7);
    std::fill(dest, dest + 3, -2);
    xbrtime_barrier();
    alltoall(dest, src.data(), 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(dest[i], -2);
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

TEST(ComposedTest, FcollectRejectsIntOverflowTotals) {
  // Regression: the displacement loop used to compute
  // `r * static_cast<int>(nelems_per_pe)` in int arithmetic, which silently
  // overflowed for per-PE counts near INT_MAX. The total is now computed in
  // std::size_t and validated up front, before any allocation — so the huge
  // request fails loudly (SpmdRegionError wrapping the contract violation)
  // instead of corrupting displacements.
  const std::size_t per = static_cast<std::size_t>(INT_MAX) / 2 + 1;
  EXPECT_THROW(run_spmd(2,
                        [&](PeContext&) {
                          int sink = 0;
                          int src[1] = {7};
                          fcollect(&sink, src, per);
                        }),
               SpmdRegionError);
  // And a 32-bit-wrapping per-PE count is rejected on one PE too.
  const std::size_t wrap = static_cast<std::size_t>(INT_MAX) + 1;
  EXPECT_THROW(run_spmd(1,
                        [&](PeContext&) {
                          int sink = 0;
                          int src[1] = {7};
                          fcollect(&sink, src, wrap);
                        }),
               SpmdRegionError);
}

TEST(ComposedTest, ChainedComposition) {
  // fcollect then reduce_all over the collected vector: stresses staging
  // reuse across consecutive collectives.
  run_spmd(4, [&](PeContext& pe) {
    auto* collected = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
    auto* reduced = static_cast<int*>(xbrtime_malloc(4 * sizeof(int)));
    int mine = pe.rank() + 1;
    xbrtime_barrier();
    fcollect(collected, &mine, 1);
    reduce_all<OpProd>(reduced, collected, 4, 1);
    // Every PE collected {1,2,3,4}; the product reduction of identical
    // vectors over 4 PEs is elementwise ^4.
    for (int i = 0; i < 4; ++i) {
      int expected = 1;
      for (int k = 0; k < 4; ++k) expected *= (i + 1);
      EXPECT_EQ(reduced[i], expected);
    }
    xbrtime_barrier();
    xbrtime_free(reduced);
    xbrtime_free(collected);
  });
}

}  // namespace
}  // namespace xbgas
