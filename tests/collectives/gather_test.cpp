#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/api_c.hpp"
#include "collectives/baseline.hpp"
#include "collectives/collectives.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::kPeCounts;
using testing::run_spmd;

/// Property: the root's dest holds every PE's contribution at pe_disp
/// order; non-root dests untouched.
void check_gather(int n_pes, int root, const std::vector<int>& msgs) {
  ASSERT_EQ(msgs.size(), static_cast<std::size_t>(n_pes));
  std::vector<int> disp(msgs.size());
  std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
  const auto total = static_cast<std::size_t>(
      std::accumulate(msgs.begin(), msgs.end(), 0));

  run_spmd(n_pes, [&](PeContext& pe) {
    const int me = pe.rank();
    const auto mine =
        static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
    // Contribution value encodes (pe, index).
    std::vector<long> src(std::max<std::size_t>(mine, 1));
    for (std::size_t i = 0; i < mine; ++i) {
      src[i] = me * 1000 + static_cast<long>(i);
    }
    std::vector<long> dest(total + 1, -44);

    xbrtime_barrier();
    gather(dest.data(), src.data(), msgs.data(), disp.data(), total, root);

    if (me == root) {
      for (int r = 0; r < n_pes; ++r) {
        for (int i = 0; i < msgs[static_cast<std::size_t>(r)]; ++i) {
          EXPECT_EQ(dest[static_cast<std::size_t>(
                        disp[static_cast<std::size_t>(r)] + i)],
                    r * 1000 + i)
              << "n=" << n_pes << " root=" << root << " from=" << r;
        }
      }
      EXPECT_EQ(dest[total], -44);
    } else {
      for (const long v : dest) EXPECT_EQ(v, -44);
    }
    xbrtime_barrier();
  });
}

std::vector<int> uniform(int n, int c) {
  return std::vector<int>(static_cast<std::size_t>(n), c);
}

TEST(GatherTest, UniformCountsAllPeCountsAndRoots) {
  for (const int n : kPeCounts) {
    for (int root = 0; root < n; ++root) {
      check_gather(n, root, uniform(n, 3));
    }
  }
}

TEST(GatherTest, VariableCounts) {
  check_gather(4, 0, {4, 1, 7, 2});
  check_gather(5, 2, {1, 6, 3, 8, 2});
  check_gather(8, 5, {2, 0, 4, 1, 9, 0, 3, 6});
}

TEST(GatherTest, ZeroCountPes) {
  check_gather(4, 3, {5, 0, 0, 1});
}

TEST(GatherTest, SinglePe) { check_gather(1, 0, {6}); }

TEST(GatherTest, PaperWorkedExample) {
  // 7 PEs, root 4 (Table 2's mapping) with distinct counts.
  check_gather(7, 4, {3, 1, 4, 1, 5, 2, 6});
}

TEST(GatherTest, ScatterThenGatherIsIdentity) {
  // Round-trip property: scatter from root then gather back must
  // reconstruct the original array.
  for (const int n : {2, 5, 8}) {
    run_spmd(n, [&](PeContext& pe) {
      std::vector<int> msgs(static_cast<std::size_t>(n));
      std::vector<int> disp(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        msgs[static_cast<std::size_t>(r)] = (r * 3) % 5 + 1;
      }
      std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
      const auto total = static_cast<std::size_t>(
          std::accumulate(msgs.begin(), msgs.end(), 0));

      std::vector<long> original(total);
      std::iota(original.begin(), original.end(), 31337);
      const auto mine =
          static_cast<std::size_t>(msgs[static_cast<std::size_t>(pe.rank())]);
      std::vector<long> slice(std::max<std::size_t>(mine, 1));
      std::vector<long> rebuilt(total, 0);

      xbrtime_barrier();
      const int root = n - 1;
      scatter(slice.data(), original.data(), msgs.data(), disp.data(), total,
              root);
      gather(rebuilt.data(), slice.data(), msgs.data(), disp.data(), total,
             root);
      if (pe.rank() == root) {
        EXPECT_EQ(rebuilt, original);
      }
      xbrtime_barrier();
    });
  }
}

TEST(GatherTest, MatchesLinearBaseline) {
  run_spmd(6, [&](PeContext& pe) {
    const int n = 6;
    std::vector<int> msgs{1, 2, 3, 1, 2, 3};
    std::vector<int> disp(static_cast<std::size_t>(n));
    std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
    const std::size_t total = 12;
    const auto mine =
        static_cast<std::size_t>(msgs[static_cast<std::size_t>(pe.rank())]);
    std::vector<int> src(std::max<std::size_t>(mine, 1));
    for (std::size_t i = 0; i < mine; ++i) {
      src[i] = pe.rank() * 10 + static_cast<int>(i);
    }
    std::vector<int> via_tree(total), via_linear(total);
    xbrtime_barrier();
    gather(via_tree.data(), src.data(), msgs.data(), disp.data(), total, 2);
    linear_gather(via_linear.data(), src.data(), msgs.data(), disp.data(),
                  total, 2);
    if (pe.rank() == 2) {
      EXPECT_EQ(via_tree, via_linear);
    }
    xbrtime_barrier();
  });
}

TEST(GatherTest, SumMismatchThrows) {
  Machine machine(testing::test_config(2));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 const int msgs[2] = {1, 1};
                 const int disp[2] = {0, 1};
                 int src[1] = {};
                 int dest[2] = {};
                 gather(dest, src, msgs, disp, /*nelems=*/3, 0);
               }),
               Error);
}

TEST(GatherTest, TypedCApiEntryPoint) {
  run_spmd(2, [&](PeContext& pe) {
    const int msgs[2] = {1, 1};
    const int disp[2] = {0, 1};
    const std::uint64_t src = 70 + static_cast<std::uint64_t>(pe.rank());
    std::uint64_t dest[2] = {0, 0};
    xbrtime_barrier();
    xbrtime_uint64_gather(dest, &src, msgs, disp, 2, 0);
    if (pe.rank() == 0) {
      EXPECT_EQ(dest[0], 70u);
      EXPECT_EQ(dest[1], 71u);
    }
    xbrtime_barrier();
  });
}

}  // namespace
}  // namespace xbgas
