#include "collectives/hierarchical.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

using testing::run_spmd;

void check_hierarchical(int n, int root, int group_size, std::size_t nelems) {
  run_spmd(n, [&](PeContext& pe) {
    auto* dest = static_cast<long*>(
        xbrtime_malloc(std::max<std::size_t>(nelems, 1) * sizeof(long)));
    std::fill(dest, dest + std::max<std::size_t>(nelems, 1), -8);
    std::vector<long> src(std::max<std::size_t>(nelems, 1));
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i] = root * 1000 + static_cast<long>(i);
    }
    xbrtime_barrier();
    hierarchical_broadcast(dest, src.data(), nelems, 1, root, group_size);
    for (std::size_t i = 0; i < nelems; ++i) {
      EXPECT_EQ(dest[i], root * 1000 + static_cast<long>(i))
          << "pe=" << pe.rank() << " n=" << n << " root=" << root
          << " group=" << group_size;
    }
    xbrtime_barrier();
    xbrtime_free(dest);
  });
}

using HierCase = std::tuple<int, int, int>;  // (n, root, group_size)

class HierarchicalSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierarchicalSweep, DeliversEverywhere) {
  const auto [n, root, group] = GetParam();
  check_hierarchical(n, root, group, 24);
}

std::vector<HierCase> hier_cases() {
  std::vector<HierCase> out;
  for (const auto& [n, group] :
       {std::pair{4, 2}, std::pair{8, 2}, std::pair{8, 4}, std::pair{6, 3},
        std::pair{6, 2}, std::pair{9, 3}, std::pair{12, 4}, std::pair{12, 3}}) {
    for (int root : {0, 1, n - 1}) {
      out.emplace_back(n, root, group);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierarchicalSweep, ::testing::ValuesIn(hier_cases()),
    [](const ::testing::TestParamInfo<HierCase>& tpi) {
      return "n" + std::to_string(std::get<0>(tpi.param)) + "_root" +
             std::to_string(std::get<1>(tpi.param)) + "_g" +
             std::to_string(std::get<2>(tpi.param));
    });

TEST(HierarchicalBroadcastTest, DegenerateGroupSizes) {
  check_hierarchical(6, 2, 1, 8);  // == plain tree
  check_hierarchical(6, 2, 6, 8);  // one group == plain tree
}

TEST(HierarchicalBroadcastTest, ZeroElements) {
  check_hierarchical(8, 3, 4, 0);
}

TEST(HierarchicalBroadcastTest, RejectsIndivisibleGroups) {
  Machine machine(testing::test_config(6));
  EXPECT_THROW(machine.run([&](PeContext&) {
                 xbrtime_init();
                 auto* d = static_cast<int*>(xbrtime_malloc(16));
                 int s = 0;
                 hierarchical_broadcast(d, &s, 1, 1, 0, 4);
               }),
               Error);
}

TEST(HierarchicalBroadcastTest, FewerInterNodeTransfersThanFlatTree) {
  // The point of the optimization: on a cluster fabric (cheap on-node
  // links, expensive node-boundary crossings — the structure the OLB
  // exposes) with a root that is not node-aligned, the flat binomial tree
  // crosses node boundaries at several stages while the two-level scheme
  // crosses exactly once per remote node.
  MachineConfig config = testing::test_config(8);
  config.topology_name = "cluster4x8";  // nodes of 4, boundary costs 8 hops
  config.net.per_hop_cycles = 400;      // make distance dominate
  config.net.fabric_message_cycles = 0;
  config.net.fabric_bytes_per_cycle = 1e9;
  Machine machine(config);
  std::uint64_t flat_cycles = 0, hier_cycles = 0;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    std::vector<long> src(256, 3);
    xbrtime_barrier();
    // Warm both forwarding sets.
    broadcast(buf, src.data(), 256, 1, /*root=*/3);
    xbrtime_barrier();
    hierarchical_broadcast(buf, src.data(), 256, 1, /*root=*/3, 4);

    const std::uint64_t t0 = pe.clock().cycles();
    broadcast(buf, src.data(), 256, 1, /*root=*/3);
    xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();
    hierarchical_broadcast(buf, src.data(), 256, 1, /*root=*/3, 4);
    const std::uint64_t t2 = pe.clock().cycles();
    if (pe.rank() == 0) {
      flat_cycles = t1 - t0;
      hier_cycles = t2 - t1;
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_LT(hier_cycles, flat_cycles);
}

}  // namespace
}  // namespace xbgas
