// CollectivePolicy unit tests: parsing, cost-model shape, crossover search,
// forced-family fallback rules, and the dispatch bookkeeping (process-wide
// counters + kCollDispatch trace events).

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "collectives/composed.hpp"
#include "collectives/policy.hpp"
#include "common/error.hpp"
#include "helpers.hpp"

namespace xbgas {
namespace {

MachineConfig policy_config(int n, const std::string& topology = "flat",
                            const std::string& algo = "auto") {
  MachineConfig config = testing::test_config(n);
  config.topology_name = topology;
  config.coll_algo = algo;
  return config;
}

TEST(PolicyTest, ParseAndNameRoundTrip) {
  for (const auto algo : {CollAlgo::kAuto, CollAlgo::kTree, CollAlgo::kRing,
                          CollAlgo::kHier}) {
    EXPECT_EQ(parse_coll_algo(coll_algo_name(algo)), algo);
  }
  EXPECT_THROW(parse_coll_algo("binomial"), Error);
  EXPECT_THROW(parse_coll_algo(""), Error);
  EXPECT_STREQ(coll_kind_name(CollKind::kAllreduce), "allreduce");
}

TEST(PolicyTest, CostsGrowWithPayloadAndPes) {
  const CollectivePolicy policy(policy_config(8));
  for (const auto kind : {CollKind::kBroadcast, CollKind::kReduce,
                          CollKind::kAllreduce, CollKind::kAllgather}) {
    EXPECT_LT(policy.tree_cost(kind, 8, 64, 8),
              policy.tree_cost(kind, 8, 4096, 8));
    EXPECT_LT(policy.ring_cost(kind, 8, 64, 8),
              policy.ring_cost(kind, 8, 4096, 8));
    EXPECT_LT(policy.tree_cost(kind, 4, 256, 8),
              policy.tree_cost(kind, 16, 256, 8));
    // Single PE: every family is free.
    EXPECT_EQ(policy.tree_cost(kind, 1, 4096, 8), 0.0);
    EXPECT_EQ(policy.ring_cost(kind, 1, 4096, 8), 0.0);
  }
}

TEST(PolicyTest, TreeWinsSmallRingWinsLarge) {
  const CollectivePolicy policy(policy_config(8));
  // Latency-bound: log2(8)=3 stages beat 14 ring steps on one element.
  EXPECT_LT(policy.tree_cost(CollKind::kAllreduce, 8, 1, 8),
            policy.ring_cost(CollKind::kAllreduce, 8, 1, 8));
  // Bandwidth-bound: 2(n-1) chunks of B/n beat 2*log2(n) full payloads.
  EXPECT_GT(policy.tree_cost(CollKind::kAllreduce, 8, 1 << 16, 8),
            policy.ring_cost(CollKind::kAllreduce, 8, 1 << 16, 8));
  const std::size_t cross = policy.crossover_nelems(CollKind::kAllreduce, 8, 8);
  ASSERT_NE(cross, std::numeric_limits<std::size_t>::max());
  EXPECT_GT(cross, std::size_t{1});
  EXPECT_LT(cross, std::size_t{1} << 16);
  // choose() agrees with the crossover on both sides.
  EXPECT_EQ(policy.choose(CollKind::kAllreduce, 8, cross / 2, 8),
            CollAlgo::kTree);
  EXPECT_EQ(policy.choose(CollKind::kAllreduce, 8, cross * 2, 8),
            CollAlgo::kRing);
}

TEST(PolicyTest, ForcedFamilyHonoredWithEligibilityFallback) {
  const CollectivePolicy tree(policy_config(8, "flat", "tree"));
  const CollectivePolicy ring(policy_config(8, "flat", "ring"));
  EXPECT_EQ(tree.forced(), CollAlgo::kTree);
  EXPECT_EQ(tree.choose(CollKind::kAllreduce, 8, 1 << 20, 8),
            CollAlgo::kTree);
  EXPECT_EQ(ring.choose(CollKind::kBroadcast, 8, 1, 8), CollAlgo::kRing);
  // Ring degenerates to tree on a single PE.
  EXPECT_EQ(ring.choose(CollKind::kBroadcast, 1, 1024, 8), CollAlgo::kTree);
  // Hier on a non-cluster fabric falls back to tree.
  const CollectivePolicy hier_flat(policy_config(8, "flat", "hier"));
  EXPECT_FALSE(hier_flat.hier_eligible(CollKind::kBroadcast, 8));
  EXPECT_EQ(hier_flat.choose(CollKind::kBroadcast, 8, 1024, 8),
            CollAlgo::kTree);
}

TEST(PolicyTest, HierEligibleOnlyOnMatchingCluster) {
  const CollectivePolicy policy(policy_config(8, "cluster4x8", "hier"));
  EXPECT_EQ(policy.cluster_group(), 4);
  // The arbitrary-depth engine covers every collective kind.
  EXPECT_TRUE(policy.hier_eligible(CollKind::kBroadcast, 8));
  EXPECT_TRUE(policy.hier_eligible(CollKind::kAllreduce, 8));
  EXPECT_TRUE(policy.hier_eligible(CollKind::kReduce, 8));
  EXPECT_TRUE(policy.hier_eligible(CollKind::kAllgather, 8));
  // Group must strictly divide the PE count.
  EXPECT_FALSE(policy.hier_eligible(CollKind::kBroadcast, 6));
  EXPECT_FALSE(policy.hier_eligible(CollKind::kBroadcast, 4));
  EXPECT_EQ(policy.choose(CollKind::kBroadcast, 8, 1024, 8), CollAlgo::kHier);
  // ...but never off the world communicator.
  EXPECT_EQ(policy.choose(CollKind::kBroadcast, 8, 1024, 8, /*world=*/false),
            CollAlgo::kTree);
}

TEST(PolicyTest, CostsMonotoneInPayload) {
  // Regression for the allgather model: `bytes / n` truncated sub-n_pes
  // payloads to zero bytes per stage (and a dead min(sub, n) clamp hid it),
  // making the cost non-monotone around nelems == n_pes. Every family must
  // now be monotone non-decreasing in the element count for every kind.
  const CollectivePolicy flat(policy_config(8));
  const CollectivePolicy clustered(policy_config(8, "cluster4x8", "auto"));
  const std::size_t sizes[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                               64, 256, 1000, 4096, 1 << 16};
  for (const auto kind : {CollKind::kBroadcast, CollKind::kReduce,
                          CollKind::kAllreduce, CollKind::kAllgather}) {
    double prev_tree = 0.0, prev_ring = 0.0, prev_hier = 0.0;
    for (const std::size_t nelems : sizes) {
      const double tree = flat.tree_cost(kind, 8, nelems, 8);
      const double ring = flat.ring_cost(kind, 8, nelems, 8);
      const double hier = clustered.hier_cost(kind, 8, nelems, 8);
      EXPECT_GE(tree, prev_tree) << coll_kind_name(kind) << " n=" << nelems;
      EXPECT_GE(ring, prev_ring) << coll_kind_name(kind) << " n=" << nelems;
      EXPECT_GE(hier, prev_hier) << coll_kind_name(kind) << " n=" << nelems;
      prev_tree = tree;
      prev_ring = ring;
      prev_hier = hier;
    }
  }
  // The specific broken point: fewer elements than PEs still moves bytes.
  EXPECT_GT(flat.tree_cost(CollKind::kAllgather, 8, 3, 8),
            flat.tree_cost(CollKind::kAllgather, 8, 0, 8));
}

TEST(PolicyTest, PolicyCacheFollowsMachineInstance) {
  // Regression: active_collective_policy() used to key its thread-local
  // cache on the raw Machine*. Worker threads (and their thread_locals)
  // outlive Machines since fiber pooling, so a second Machine reusing the
  // first one's address dispatched with the FIRST machine's policy. The
  // two scoped blocks below put both Machines in the same stack slot to
  // force address reuse; the cache is now keyed by Machine::instance_id().
  reset_coll_dispatch_counts();
  {
    Machine machine(policy_config(8, "cluster4x8", "hier"));
    machine.run([&](PeContext&) {
      xbrtime_init();
      auto* dest = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
      long src[64] = {};
      xbrtime_barrier();
      dispatch_broadcast(dest, src, 64, 1, 0);
      xbrtime_barrier();
      xbrtime_free(dest);
      xbrtime_close();
    });
  }
  const CollDispatchCounts first = coll_dispatch_counts();
  EXPECT_EQ(first.by_algo[static_cast<int>(CollAlgo::kHier)], 8u);

  reset_coll_dispatch_counts();
  {
    Machine machine(policy_config(8, "flat", "tree"));
    machine.run([&](PeContext&) {
      xbrtime_init();
      auto* dest = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
      long src[64] = {};
      xbrtime_barrier();
      dispatch_broadcast(dest, src, 64, 1, 0);
      xbrtime_barrier();
      xbrtime_free(dest);
      xbrtime_close();
    });
  }
  const CollDispatchCounts second = coll_dispatch_counts();
  // Dispatch must follow the SECOND machine's config, not a stale cache.
  EXPECT_EQ(second.total, 8u);
  EXPECT_EQ(second.by_algo[static_cast<int>(CollAlgo::kHier)], 0u);
  EXPECT_EQ(second.by_algo[static_cast<int>(CollAlgo::kTree)], 8u);
}

TEST(PolicyTest, DispatchCountersAndTraceEvents) {
  MachineConfig config = policy_config(4, "flat", "ring");
  config.trace.enabled = true;
  Machine machine(config);
  reset_coll_dispatch_counts();
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    long src[8] = {1, 2, 3, 4, 5, 6, 7, static_cast<long>(pe.rank())};
    xbrtime_barrier();
    reduce_all<OpSum>(dest, src, 8, 1);
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
  const CollDispatchCounts counts = coll_dispatch_counts();
  EXPECT_EQ(counts.total, 4u);  // one dispatch per PE
  EXPECT_EQ(counts.auto_resolved, 0u);  // family was forced
  EXPECT_EQ(counts.by_algo[static_cast<int>(CollAlgo::kRing)], 4u);
  EXPECT_EQ(counts.by_kind_algo[static_cast<int>(CollKind::kAllreduce)]
                               [static_cast<int>(CollAlgo::kRing)],
            4u);
  // Every PE recorded a coll_dispatch event encoding (kind, algo, bytes).
  int dispatch_events = 0;
  for (int r = 0; r < 4; ++r) {
    for (const TraceEvent& ev : machine.tracer().ring(r)->snapshot()) {
      if (ev.kind != EventKind::kCollDispatch) continue;
      ++dispatch_events;
      EXPECT_EQ(ev.a >> 8, static_cast<std::uint64_t>(CollKind::kAllreduce));
      EXPECT_EQ(ev.a & 0xFF, static_cast<std::uint64_t>(CollAlgo::kRing));
      EXPECT_EQ(ev.b, 8u * sizeof(long));
    }
  }
  EXPECT_EQ(dispatch_events, 4);

  reset_coll_dispatch_counts();
  EXPECT_EQ(coll_dispatch_counts().total, 0u);
}

TEST(PolicyTest, AutoDispatchCountsResolvedDecisions) {
  Machine machine(policy_config(4));
  reset_coll_dispatch_counts();
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(sizeof(long)));
    long mine = pe.rank();
    xbrtime_barrier();
    reduce_all<OpSum>(dest, &mine, 1, 1);  // tiny payload: model picks tree
    xbrtime_barrier();
    xbrtime_free(dest);
    xbrtime_close();
  });
  const CollDispatchCounts counts = coll_dispatch_counts();
  EXPECT_EQ(counts.total, 4u);
  EXPECT_EQ(counts.auto_resolved, 4u);
  EXPECT_EQ(counts.by_algo[static_cast<int>(CollAlgo::kTree)], 4u);
}

}  // namespace
}  // namespace xbgas
