// XbrSan negative + behavioral suite (ISSUE PR 4 tentpole).
//
// The positive guarantee — the shipped collectives run violation-free under
// --xbrsan full — is locked down by the conformance sweep
// (tests/collectives/conformance_test.cpp). This suite proves the opposite
// direction: each violation class is actually *detected*, with the typed
// SanViolationError carrying the right kind, entry point, ranks, and range.
//
// Violating accesses are issued inside the SPMD body and caught there, on
// the issuing PE's own fiber, so each test can assert on the structured
// error fields and then let the region finish cleanly. Where two issuers
// must hit the target in a known order, a host-side std::atomic sequences
// the *PE contexts*; the sanitizer itself only reasons about barriers, so
// the accesses remain concurrent in the simulated-synchronization sense.

#include "san/sanitizer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "collectives/team.hpp"
#include "fault/errors.hpp"
#include "machine/fiber.hpp"
#include "machine/machine.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, SanMode mode) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  c.san.mode = mode;
  return c;
}

/// Spin until `flag` is true — host-side sequencing only. Must park the
/// calling *fiber*, not just the OS thread: with PEs multiplexed over a
/// bounded worker pool, a raw spin could monopolize the worker the
/// flag-setter needs (src/machine/fiber.hpp invariants).
void await(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) {
    FiberScheduler::yield_waiting();  // no-op in threads mode
    std::this_thread::yield();
  }
}

TEST(SanBoundsTest, OutOfBoundsPutDetectedWithTypedError) {
  Machine machine(config(2, SanMode::kBounds));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(32, 7);
      bool caught = false;
      try {
        xbr_put(buf, src.data(), 32, 1, 1);  // 256 B into a 64 B allocation
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kOutOfBounds);
        EXPECT_STREQ(e.fn(), "xbr_put");
        EXPECT_EQ(e.issuing_rank(), 0);
        EXPECT_EQ(e.target_rank(), 1);
        EXPECT_EQ(e.bytes(), 32 * sizeof(long));
        EXPECT_NE(std::string(e.what()).find("XbrSan[out_of_bounds]"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_TRUE(caught);
      // The in-bounds prefix of the same buffer stays writable.
      xbr_put(buf, src.data(), 8, 1, 1);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
}

TEST(SanBoundsTest, UseAfterFreeGetDetected) {
  Machine machine(config(2, SanMode::kBounds));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    xbrtime_free(buf);
    // One more barrier: free unregisters the block *after* its internal
    // rendezvous (lagging peers may touch it right up to their own free
    // call), so the shadow is only guaranteed dead everywhere once every
    // PE has passed a subsequent synchronization point.
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> landed(16, 0);
      bool caught = false;
      try {
        xbr_get(landed.data(), buf, 16, 1, 1);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kUseAfterFree);
        EXPECT_STREQ(e.fn(), "xbr_get");
        EXPECT_EQ(e.target_rank(), 1);
        EXPECT_NE(std::string(e.what()).find("use_after_free"),
                  std::string::npos);
      }
      EXPECT_TRUE(caught);
    }
    xbrtime_barrier();
    xbrtime_close();
  });
}

TEST(SanBoundsTest, ReallocatedBlockIsLiveAgain) {
  Machine machine(config(2, SanMode::kBounds));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* a = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    xbrtime_free(a);
    // First-fit hands the same offset back; the freed-history entry must be
    // dropped or this legitimate put would be misdiagnosed as UAF.
    auto* b = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    ASSERT_EQ(a, b);
    xbrtime_barrier();
    if (pe.rank() == 0) {
      const long v = 42;
      xbr_put(b, &v, 1, 1, 1);
    }
    xbrtime_barrier();
    xbrtime_free(b);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(SanBoundsTest, SpanStraddlingTwoAllocationsDetected) {
  Machine machine(config(2, SanMode::kBounds));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    // First-fit places b directly after a (both 16-aligned sizes).
    auto* a = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    auto* b = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    ASSERT_EQ(reinterpret_cast<std::byte*>(a) + 8 * sizeof(long),
              reinterpret_cast<std::byte*>(b));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(12, 3);
      bool caught = false;
      try {
        xbr_put(a, src.data(), 12, 1, 1);  // runs off a into b
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kStraddle);
        EXPECT_NE(std::string(e.what()).find("straddl"), std::string::npos);
      }
      EXPECT_TRUE(caught);
    }
    xbrtime_barrier();
    xbrtime_free(b);
    xbrtime_free(a);
    xbrtime_close();
  });
}

TEST(SanConflictTest, SameEpochWriteWriteConflictDetected) {
  Machine machine(config(3, SanMode::kFull));
  std::atomic<bool> first_put_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    const long v = static_cast<long>(pe.rank());
    if (pe.rank() == 0) {
      xbr_put(buf, &v, 1, 1, 2);
      first_put_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(first_put_done);  // host ordering only: no barrier between them
      bool caught = false;
      try {
        xbr_put(buf, &v, 1, 1, 2);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kWriteWriteConflict);
        EXPECT_STREQ(e.fn(), "xbr_put");
        EXPECT_EQ(e.issuing_rank(), 1);
        EXPECT_EQ(e.target_rank(), 2);
        const std::string what = e.what();
        // Both endpoints' context: the prior access's fn and rank.
        EXPECT_NE(what.find("write_write_conflict"), std::string::npos);
        EXPECT_NE(what.find("from PE 0"), std::string::npos) << what;
      }
      EXPECT_TRUE(caught);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
}

TEST(SanConflictTest, SameEpochReadWriteConflictDetected) {
  Machine machine(config(3, SanMode::kFull));
  std::atomic<bool> put_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      const long v = 9;
      xbr_put(buf, &v, 1, 1, 2);
      put_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(put_done);
      std::vector<long> landed(1, 0);
      bool caught = false;
      try {
        xbr_get(landed.data(), buf, 1, 1, 2);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kReadWriteConflict);
        EXPECT_STREQ(e.fn(), "xbr_get");
      }
      EXPECT_TRUE(caught);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(SanConflictTest, ConcurrentReadsDoNotConflict) {
  Machine machine(config(3, SanMode::kFull));
  std::atomic<bool> first_get_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    std::vector<long> landed(16, 0);
    if (pe.rank() == 0) {
      xbr_get(landed.data(), buf, 16, 1, 2);
      first_get_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(first_get_done);
      xbr_get(landed.data(), buf, 16, 1, 2);  // read/read: legitimate
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(SanConflictTest, BarrierOrdersAccessesAcrossEpochs) {
  Machine machine(config(3, SanMode::kFull));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    const long v = static_cast<long>(pe.rank());
    if (pe.rank() == 0) xbr_put(buf, &v, 1, 1, 2);
    xbrtime_barrier();  // epoch boundary: orders the two writes
    if (pe.rank() == 1) xbr_put(buf, &v, 1, 1, 2);
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(SanConflictTest, TeamBarrierOrdersItsMembers) {
  // PE 0 writes, then a {0,1} team barrier, then PE 1 writes the same range:
  // the vector-clock join across the *team* barrier must order the pair —
  // a naive global epoch counter cannot express this.
  Machine machine(config(4, SanMode::kFull));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    const long v = static_cast<long>(pe.rank());
    if (pe.rank() <= 1) {
      if (pe.rank() == 0) xbr_put(buf, &v, 1, 1, 3);
      Team team(/*start=*/0, /*stride=*/1, /*size=*/2);
      team.barrier();
      if (pe.rank() == 1) xbr_put(buf, &v, 1, 1, 3);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(SanConflictTest, TeamBarrierDoesNotOrderNonMembers) {
  // PE 0 writes, a {1,2} team barrier runs (PE 0 is not a member), then
  // PE 1 writes the same range: still unordered — must be flagged.
  Machine machine(config(4, SanMode::kFull));
  std::atomic<bool> put_done{false};
  std::atomic<bool> violated{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    const long v = static_cast<long>(pe.rank());
    if (pe.rank() == 0) {
      xbr_put(buf, &v, 1, 1, 3);
      put_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1 || pe.rank() == 2) {
      await(put_done);
      Team team(/*start=*/1, /*stride=*/1, /*size=*/2);
      team.barrier();
      if (pe.rank() == 1) {
        try {
          xbr_put(buf, &v, 1, 1, 3);
        } catch (const SanViolationError& e) {
          EXPECT_EQ(e.kind(), SanViolationKind::kWriteWriteConflict);
          violated.store(true, std::memory_order_release);
        }
      }
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  EXPECT_TRUE(violated.load());
}

TEST(SanConflictTest, AmoAmoPairsAreLegitimate) {
  // The GUPs pattern: many PEs AMO the same word concurrently. Atomic
  // accesses never conflict with each other.
  Machine machine(config(3, SanMode::kFull));
  std::atomic<bool> first_amo_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* slot = static_cast<std::uint64_t*>(
        xbrtime_malloc(sizeof(std::uint64_t)));
    *slot = 0;
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_amo_add(slot, std::uint64_t{1}, 2);
      first_amo_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(first_amo_done);
      xbr_amo_add(slot, std::uint64_t{1}, 2);
    }
    xbrtime_barrier();
    if (pe.rank() == 2) {
      EXPECT_EQ(*slot, 2u);
    }
    xbrtime_barrier();
    xbrtime_free(slot);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(SanConflictTest, AmoVersusPutConflicts) {
  Machine machine(config(3, SanMode::kFull));
  std::atomic<bool> put_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* slot = static_cast<std::uint64_t*>(
        xbrtime_malloc(sizeof(std::uint64_t)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      const std::uint64_t v = 5;
      xbr_put(slot, &v, 1, 1, 2);
      put_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(put_done);
      bool caught = false;
      try {
        xbr_amo_add(slot, std::uint64_t{1}, 2);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kWriteWriteConflict);
        EXPECT_STREQ(e.fn(), "xbr_amo_add");
      }
      EXPECT_TRUE(caught);
    }
    xbrtime_barrier();
    xbrtime_free(slot);
    xbrtime_close();
  });
}

TEST(SanModeTest, OffModeChecksNothing) {
  // The same out-of-bounds program that kBounds rejects runs to completion:
  // off is genuinely off (the acceptance criterion behind the "no measurable
  // slowdown" requirement).
  Machine machine(config(2, SanMode::kOff));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    auto* pad = static_cast<long*>(xbrtime_malloc(32 * sizeof(long)));
    (void)pad;  // keeps the overrun inside the target's own segment
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(32, 7);
      EXPECT_NO_THROW(xbr_put(buf, src.data(), 32, 1, 1));
    }
    xbrtime_barrier();
    xbrtime_free(pad);
    xbrtime_free(buf);
    xbrtime_close();
  });
  const Sanitizer::Counters c = machine.sanitizer().counters();
  EXPECT_EQ(c.bounds_checks, 0u);
  EXPECT_EQ(c.violations, 0u);
}

TEST(SanModeTest, BoundsModeSkipsConflictDetection) {
  Machine machine(config(3, SanMode::kBounds));
  std::atomic<bool> first_put_done{false};
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    const long v = 1;
    if (pe.rank() == 0) {
      xbr_put(buf, &v, 1, 1, 2);
      first_put_done.store(true, std::memory_order_release);
    } else if (pe.rank() == 1) {
      await(first_put_done);
      EXPECT_NO_THROW(xbr_put(buf, &v, 1, 1, 2));  // kBounds: no ledger
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  const Sanitizer::Counters c = machine.sanitizer().counters();
  EXPECT_GT(c.bounds_checks, 0u);
  EXPECT_EQ(c.ledger_records, 0u);
  EXPECT_EQ(c.violations, 0u);
}

TEST(SanModeTest, UncaughtViolationSurfacesAsSpmdRegionError) {
  // Without an in-region handler the violation unwinds the PE, poisons the
  // barriers, and Machine::run reports it — naming the check and the fn.
  Machine machine(config(2, SanMode::kBounds));
  try {
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      auto* buf = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
      xbrtime_barrier();
      if (pe.rank() == 0) {
        std::vector<long> src(64, 7);
        xbr_put(buf, src.data(), 64, 1, 1);
      }
      xbrtime_barrier();
      xbrtime_close();
    });
    FAIL() << "expected SpmdRegionError";
  } catch (const SpmdRegionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("XbrSan[out_of_bounds]"), std::string::npos) << what;
    EXPECT_NE(what.find("xbr_put"), std::string::npos) << what;
  }
}

TEST(SanCountersTest, CountersLandInTheRegistry) {
  Machine machine(config(2, SanMode::kFull));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(16 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(16, 1);
      xbr_put(buf, src.data(), 16, 1, 1);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  const CounterRegistry reg = collect_counters(machine);
  EXPECT_EQ(reg.get("san.enabled").value_or(99), 1u);
  EXPECT_GT(reg.get("san.bounds_checks").value_or(0), 0u);
  EXPECT_GT(reg.get("san.ledger_records").value_or(0), 0u);
  EXPECT_GT(reg.get("san.epochs").value_or(0), 0u);
  EXPECT_EQ(reg.get("san.violations").value_or(99), 0u);
}

TEST(SanCountersTest, EpochAdvancesAtEveryBarrier) {
  Machine machine(config(2, SanMode::kFull));
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    if (pe.rank() == 0) before = machine.sanitizer().epoch(0);
    xbrtime_barrier();
    xbrtime_barrier();
    if (pe.rank() == 0) after = machine.sanitizer().epoch(0);
    xbrtime_close();
  });
  EXPECT_GE(after, before + 2);
}

TEST(SanTraceTest, ViolationEmitsTraceEvent) {
  MachineConfig c = config(2, SanMode::kBounds);
  c.trace.enabled = true;
  Machine machine(c);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(8 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(64, 7);
      try {
        xbr_put(buf, src.data(), 64, 1, 1);
      } catch (const SanViolationError&) {
      }
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  bool saw_violation = false;
  ASSERT_NE(machine.tracer().ring(0), nullptr);
  for (const TraceEvent& ev : machine.tracer().ring(0)->snapshot()) {
    if (ev.kind == EventKind::kSanViolation) {
      saw_violation = true;
      EXPECT_EQ(ev.a, static_cast<std::uint64_t>(
                          SanViolationKind::kOutOfBounds));
      EXPECT_EQ(ev.target_pe, 1);
    }
  }
  EXPECT_TRUE(saw_violation);
}

}  // namespace
}  // namespace xbgas
