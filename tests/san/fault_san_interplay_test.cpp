// XbrSan x fault-injection interplay: a dropped or delayed RMA that the
// runtime retries is ONE logical transfer, not several conflicting ones.
// Under --xbrsan full a retried put must not trip the epoch conflict
// detector (a false positive would make the sanitizer useless exactly when
// the fault layer is exercising the paths it guards), and the retried
// payload must still land intact.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "san/sanitizer.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr int kPes = 4;
constexpr std::size_t kElems = 64;
constexpr int kRounds = 3;

struct SweepPoint {
  double drop;
  double delay;
  std::uint64_t seed;
};

/// Neighbor-ring workload: every PE puts into its right neighbor's buffer,
/// barriers, and verifies what its left neighbor sent. Single writer per
/// target range per epoch — clean by construction, so any reported
/// violation is a sanitizer false positive.
struct SweepResult {
  std::uint64_t violations = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  std::uint64_t bounds_checks = 0;
  int bad_payloads = 0;
};

SweepResult run_point(const SweepPoint& p) {
  MachineConfig c;
  c.n_pes = kPes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.san.mode = SanMode::kFull;
  c.fault.seed = p.seed;
  c.fault.rma_drop_prob = p.drop;
  c.fault.rma_delay_prob = p.delay;
  c.fault.max_rma_retries = 12;  // drops must not exhaust the budget
  Machine machine(c);

  std::vector<int> bad(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* inbox = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    auto* outbox = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    const int right = (pe.rank() + 1) % kPes;
    const int left = (pe.rank() + kPes - 1) % kPes;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < kElems; ++i) {
        outbox[i] = static_cast<std::uint64_t>(pe.rank()) * 1000 +
                    static_cast<std::uint64_t>(round) * 100 + i;
      }
      xbrtime_barrier();  // everyone's previous-round reads are done
      xbr_put(inbox, outbox, kElems, 1, right);
      xbrtime_barrier();  // all puts (including retried ones) delivered
      for (std::size_t i = 0; i < kElems; ++i) {
        const std::uint64_t want = static_cast<std::uint64_t>(left) * 1000 +
                                   static_cast<std::uint64_t>(round) * 100 +
                                   i;
        if (inbox[i] != want) bad[static_cast<std::size_t>(pe.rank())] = 1;
      }
    }
    xbrtime_free(outbox);
    xbrtime_free(inbox);
    xbrtime_close();
  });

  const CounterRegistry counters = collect_counters(machine);
  SweepResult r;
  r.violations = counters.get("san.violations").value();
  r.retries = counters.get("rma.retries").value();
  r.drops = counters.get("fault.injected.rma_drop").value();
  r.bounds_checks = counters.get("san.bounds_checks").value();
  for (const int b : bad) r.bad_payloads += b;
  return r;
}

TEST(FaultSanInterplayTest, RetriedRmaIsNotAConflictAcrossSeededSweep) {
  const double probs[] = {0.02, 0.1, 0.3};
  const std::uint64_t seeds[] = {1, 2, 3};
  std::uint64_t total_retries = 0;
  std::uint64_t total_drops = 0;

  for (const double prob : probs) {
    for (const std::uint64_t seed : seeds) {
      // Drops force the full retransmission path; delays only stretch the
      // modeled wire. Both must be invisible to the conflict detector.
      for (const bool dropping : {true, false}) {
        const SweepPoint p{dropping ? prob : 0.0, dropping ? 0.0 : prob,
                           seed};
        SCOPED_TRACE((dropping ? "drop=" : "delay=") +
                     std::to_string(prob) + " seed=" + std::to_string(seed));
        const SweepResult r = run_point(p);
        EXPECT_EQ(r.violations, 0u)
            << "sanitizer false positive on a dropped/delayed-and-retried "
               "RMA";
        EXPECT_GT(r.bounds_checks, 0u) << "sanitizer was not actually on";
        EXPECT_EQ(r.bad_payloads, 0) << "a retried put lost its payload";
        total_retries += r.retries;
        total_drops += r.drops;
      }
    }
  }

  // Across the sweep the fault layer must really have fired — otherwise
  // this test proves nothing about the interplay.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_retries, 0u);
}

}  // namespace
}  // namespace xbgas
