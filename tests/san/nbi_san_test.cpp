// XbrSan epochs for the explicit-handle nbi surface (ISSUE PR 8 satellite).
//
// Three negative cases, one per new epoch kind, each raising a typed
// SanViolationError and then proving the SAME access is clean after the
// request completes:
//   - kNbWriteBeforeWait: the local source of an in-flight xbr_put_nbi is
//     rewritten before xbr_wait_req.
//   - kNbRemoteBeforeWait: the remote landing zone of an in-flight
//     xbr_put_nbi is read before the request completes (the zone lives in
//     the TARGET's shadow, so even the issuer's own access is flagged —
//     which is what makes this test single-issuer deterministic).
//   - kCollInFlight: the result buffer of an nbi collective is used as an
//     RMA source between issue and CollReq::wait.
// Plus the positive case: a representative mix of nbi puts/gets, coalesced
// puts, and nbi collectives with a proper wait discipline runs clean under
// --xbrsan full.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "collectives/nbi.hpp"
#include "machine/machine.hpp"
#include "san/errors.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"
#include "xbrtime/wc.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  c.san.mode = SanMode::kFull;
  return c;
}

TEST(NbiSanTest, RewritingPutSourceBeforeWaitReqIsFlagged) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    auto* other = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    auto* sink = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    std::vector<long> src(64, 5);
    for (int i = 0; i < 64; ++i) other[i] = 50 + pe.rank();
    xbrtime_barrier();
    if (pe.rank() == 0) {
      XbrRequest req = xbr_put_nbi(remote, src.data(), 64, 1, 1);
      // `src` is still the live source of an unretired put: overwriting it
      // (here: as the landing buffer of a blocking get) hands the modeled
      // transfer ambiguous bytes.
      bool caught = false;
      try {
        xbr_get(src.data(), other, 64, 1, 1);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kNbWriteBeforeWait);
        EXPECT_STREQ(e.fn(), "xbr_get");
      }
      EXPECT_TRUE(caught);
      // Reading the source stays legal while it is in flight.
      EXPECT_NO_THROW(xbr_put(sink, src.data(), 64, 1, 1));
      xbr_wait_req(req);
      // Retired: the very access that was flagged is now clean.
      EXPECT_NO_THROW(xbr_get(src.data(), other, 64, 1, 1));
      EXPECT_EQ(src[0], 51);
    }
    xbrtime_barrier();
    xbrtime_free(sink);
    xbrtime_free(other);
    xbrtime_free(remote);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
}

TEST(NbiSanTest, ReadingOpenPutLandingZoneIsFlagged) {
  Machine machine(config(2));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* zone = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    std::vector<long> src(64, 6), land(64, 0);
    xbrtime_barrier();
    if (pe.rank() == 0) {
      XbrRequest req = xbr_put_nbi(zone, src.data(), 64, 1, 1);
      // The landing zone on PE 1 stays open until the request completes:
      // any remote access to it — even by the issuer — observes a transfer
      // whose modeled completion has not happened.
      bool caught = false;
      try {
        xbr_get(land.data(), zone, 64, 1, 1);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kNbRemoteBeforeWait);
        EXPECT_NE(std::string(e.what()).find("xbr_put_nbi"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_TRUE(caught);
      xbr_wait_req(req);
      EXPECT_NO_THROW(xbr_get(land.data(), zone, 64, 1, 1));
      EXPECT_EQ(land[0], 6);
    }
    xbrtime_barrier();
    xbrtime_free(zone);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
}

TEST(NbiSanTest, TouchingCollectiveBufferMidFlightIsFlagged) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* dest = static_cast<long*>(xbrtime_malloc(96 * sizeof(long)));
    auto* scratch = static_cast<long*>(xbrtime_malloc(96 * sizeof(long)));
    std::vector<long> src(96);
    for (int i = 0; i < 96; ++i) src[static_cast<std::size_t>(i)] = i;
    xbrtime_barrier();
    CollReq req = xbr_broadcast_nbi(dest, src.data(), 96, 1, /*root=*/0);
    if (pe.rank() == 0) {
      // Between issue and wait() the result buffer is an open kCollInFlight
      // zone on every participant: forwarding it as an RMA source reads a
      // buffer the collective may still be landing.
      bool caught = false;
      try {
        xbr_put(scratch, dest, 96, 1, 1);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kCollInFlight);
        EXPECT_NE(std::string(e.what()).find("xbr_broadcast_nbi"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_TRUE(caught);
    }
    req.wait();
    // Completed: the result is settled and freely usable again.
    if (pe.rank() == 0) {
      EXPECT_NO_THROW(xbr_put(scratch, dest, 96, 1, 1));
    }
    for (int i = 0; i < 96; ++i) ASSERT_EQ(dest[i], i);
    xbrtime_barrier();
    xbrtime_free(scratch);
    xbrtime_free(dest);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
}

TEST(NbiSanTest, DisciplinedNbiTrafficRunsCleanUnderFull) {
  Machine machine(config(4));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const int n = pe.n_pes();
    const int me = pe.rank();
    auto* table = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    auto* all = static_cast<long*>(
        xbrtime_malloc(static_cast<std::size_t>(n) * 8 * sizeof(long)));
    std::vector<long> mine(64, me), land(64, 0);
    for (int i = 0; i < 256; ++i) table[i] = 0;
    xbrtime_barrier();

    // Explicit-handle traffic, retired via wait/test/quiet.
    XbrRequest p =
        xbr_put_nbi(table + me * 64, mine.data(), 64, 1, (me + 1) % n);
    // Read a stripe of the neighbour that nobody has an open put into (the
    // stripe written by PE me+1 lands on PE me+2, not on PE me+1 itself).
    XbrRequest g = xbr_get_nbi(land.data(), table + ((me + 1) % n) * 64, 8, 1,
                               (me + 1) % n);
    xbr_wait_req(p);
    while (!xbr_test(g)) pe.clock().advance(16);
    xbr_quiet();
    xbrtime_barrier();

    // Coalesced small puts into this PE's own stripe of the next PE.
    xbr_wc_enable();
    for (int i = 0; i < 32; ++i) {
      long v = 1000 + i;
      xbr_put_wc(table + me * 64 + i, &v, 1, 1, (me + 1) % n);
    }
    xbr_wc_disable();
    xbrtime_barrier();

    // An nbi collective pair with the SPMD wait discipline.
    std::vector<long> contrib(8, me + 1);
    CollReq fc = xbr_fcollect_nbi(all, contrib.data(), 8);
    fc.wait();
    for (int r = 0; r < n; ++r) {
      for (int j = 0; j < 8; ++j) ASSERT_EQ(all[r * 8 + j], r + 1);
    }
    std::vector<long> sums(16, me);
    CollReq ar = xbr_reduce_all_nbi<OpSum>(table, sums.data(), 16, 1);
    ar.wait();
    for (int j = 0; j < 16; ++j) ASSERT_EQ(table[j], n * (n - 1) / 2);
    xbrtime_barrier();
    xbrtime_free(all);
    xbrtime_free(table);
    xbrtime_close();
  });
  const auto& c = machine.sanitizer().counters();
  EXPECT_EQ(c.violations, 0u);
  EXPECT_GT(c.nb_tracked, 0u);
}

}  // namespace
}  // namespace xbgas
