// Checkpoint/restore under XbrSan full: the snapshot machinery itself, and
// the post-death orphan re-shard path (restore -> deal -> push to new
// owners), must run violation-free with epoch conflict detection armed.
// This is the recovery side of the PR 4 guarantee — the collectives are
// clean under `--xbrsan full`, and so is the failure path built on them.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "collectives/checkpoint.hpp"
#include "collectives/shrink.hpp"
#include "san/sanitizer.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

constexpr std::size_t kElems = 32;

MachineConfig config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  c.san.mode = SanMode::kFull;
  return c;
}

std::uint64_t pattern(int rank, std::size_t i) {
  return static_cast<std::uint64_t>(rank) * 1000 + i;
}

TEST(CheckpointSanTest, RoundTripWithRemoteTrafficIsClean) {
  constexpr int kPes = 4;
  Machine machine(config(kPes));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < kElems; ++i) buf[i] = pattern(pe.rank(), i);
    xbrtime_barrier();

    const std::uint64_t v1 = xbr_checkpoint();

    // Scribble over the neighbour with atomic stores (the serving data
    // plane's op), then roll everything back.
    const int peer = (pe.rank() + 1) % kPes;
    std::vector<std::uint64_t> junk(kElems, 0xDEAD);
    xbr_put_atomic(buf, junk.data(), kElems, 1, peer);
    xbrtime_barrier();

    const RestoreReport rep = xbr_restore();
    bool good = rep.version == v1 &&
                rep.restored_bytes == kElems * sizeof(std::uint64_t) &&
                rep.orphans.empty();
    for (std::size_t i = 0; i < kElems; ++i) {
      good = good && buf[i] == pattern(pe.rank(), i);
    }
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

TEST(CheckpointSanTest, OrphanReShardAfterDeathIsClean) {
  constexpr int kPes = 4;
  constexpr int kVictim = 1;
  FaultConfig fc;
  // Barrier arrival ledger: xbrtime_init #1-3, xbrtime_malloc #4-5, the
  // explicit post-fill barrier #6, xbr_checkpoint's internal quiesce/commit
  // pair #7-8 — so the explicit barrier after the checkpoint is #9.
  fc.kills.push_back(KillSpec{kVictim, KillSite::kBarrier, 9});
  Machine machine(config(kPes, fc));
  std::vector<int> ok(kPes, -1);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<std::uint64_t*>(
        xbrtime_malloc(kElems * sizeof(std::uint64_t)));  // barriers #1,#2
    for (std::size_t i = 0; i < kElems; ++i) buf[i] = pattern(pe.rank(), i);
    xbrtime_barrier();  // #3
    xbr_checkpoint();   // victim's data is now in the store
    try {
      xbrtime_barrier();  // #9: victim dies
      FAIL() << "barrier should have been poisoned";
    } catch (const PeFailedError&) {
      auto team = xbr_team_shrink();
      const RestoreReport rep = xbr_restore(*team);
      bool good = true;
      // Exactly one survivor receives the orphaned buffer; its bytes are
      // the victim's pre-checkpoint pattern.
      if (!rep.orphans.empty()) {
        good = good && rep.orphans.size() == 1 &&
               rep.orphans[0].world_rank == kVictim &&
               rep.orphan_bytes == kElems * sizeof(std::uint64_t);
        std::vector<std::uint64_t> vals(kElems);
        std::memcpy(vals.data(), rep.orphans[0].data.data(),
                    kElems * sizeof(std::uint64_t));
        for (std::size_t i = 0; i < kElems; ++i) {
          good = good && vals[i] == pattern(kVictim, i);
        }
        // Re-shard: push the orphan's words onto the survivors' own slots
        // round-robin with atomic stores, like the serving rebalance does.
        const std::vector<int> members = team->members();
        for (std::size_t i = 0; i < kElems; ++i) {
          const int target = members[i % members.size()];
          xbr_put_atomic(buf + i, &vals[i], 1, 1, target);
        }
      }
      team->barrier();
      ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    }
  });
  for (int r = 0; r < kPes; ++r) {
    if (r == kVictim) continue;
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
  }
  EXPECT_EQ(machine.n_alive(), kPes - 1);
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

}  // namespace
}  // namespace xbgas
