// Nonblocking-transfer semantics (ISSUE PR 4 satellite: test coverage).
//
// Three contracts around xbr_put_nb/xbr_get_nb:
//   1. xbr_wait advances the issuing PE's clock to the pending completion
//      horizon and never moves it backwards (monotonicity).
//   2. xbrtime_barrier drains the pending horizon — a barrier implies
//      completion of every nonblocking transfer issued before it.
//   3. Under --xbrsan full, touching an xbr_get_nb destination before
//      xbr_wait is flagged as nb_read_before_wait; after xbr_wait (or a
//      barrier) the same access is clean.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"
#include "san/errors.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig config(int n_pes, SanMode mode) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout = MemoryLayout{.private_bytes = 64 * 1024,
                          .shared_bytes = 1024 * 1024};
  c.san.mode = mode;
  return c;
}

TEST(NonblockingTest, XbrWaitAdvancesClockToPendingHorizonMonotonically) {
  Machine machine(config(2, SanMode::kOff));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(256, 1);
      xbr_put_nb(buf, src.data(), 256, 1, 1);
      // Issue charges only injection; the completion horizon is ahead of us.
      const std::uint64_t at_issue = pe.clock().cycles();
      const std::uint64_t horizon = pe.pending_completion();
      EXPECT_GT(horizon, at_issue);
      xbr_wait();
      const std::uint64_t after_wait = pe.clock().cycles();
      EXPECT_GE(after_wait, horizon);  // wait completes the transfer
      EXPECT_GE(after_wait, at_issue);
      EXPECT_EQ(pe.pending_completion(), 0u);
      // Idempotent: a second wait with nothing outstanding is a no-op.
      xbr_wait();
      EXPECT_EQ(pe.clock().cycles(), after_wait);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NonblockingTest, OverlappedTransfersShareOneHorizon) {
  // Two back-to-back nonblocking puts overlap: waiting for both costs the
  // max of their horizons, not the sum (the point of the _nb forms).
  Machine machine(config(3, SanMode::kOff));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      std::vector<long> src(256, 1);
      xbr_put_nb(buf, src.data(), 256, 1, 1);
      const std::uint64_t h1 = pe.pending_completion();
      xbr_put_nb(buf, src.data(), 256, 1, 2);
      const std::uint64_t h2 = pe.pending_completion();
      EXPECT_GE(h2, h1);  // the horizon only ever moves forward
      xbr_wait();
      EXPECT_GE(pe.clock().cycles(), h2);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NonblockingTest, BarrierDrainsPendingHorizon) {
  Machine machine(config(2, SanMode::kOff));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* buf = static_cast<long*>(xbrtime_malloc(256 * sizeof(long)));
    xbrtime_barrier();
    std::uint64_t horizon = 0;
    if (pe.rank() == 0) {
      std::vector<long> src(256, 2);
      xbr_put_nb(buf, src.data(), 256, 1, 1);
      horizon = pe.pending_completion();
      EXPECT_GT(horizon, 0u);
    }
    xbrtime_barrier();  // must complete the outstanding put
    if (pe.rank() == 0) {
      EXPECT_EQ(pe.pending_completion(), 0u);
      EXPECT_GE(pe.clock().cycles(), horizon);
    }
    if (pe.rank() == 1) {
      for (int i = 0; i < 256; ++i) EXPECT_EQ(buf[i], 2);
    }
    xbrtime_barrier();
    xbrtime_free(buf);
    xbrtime_close();
  });
}

TEST(NonblockingTest, ReadingNbGetDestinationBeforeWaitIsFlagged) {
  Machine machine(config(2, SanMode::kFull));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote_src = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    auto* landing = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    for (int i = 0; i < 64; ++i) remote_src[i] = 100 + pe.rank();
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_get_nb(landing, remote_src, 64, 1, 1);
      // `landing` is still an open landing zone: forwarding it as the source
      // of another transfer reads a half-landed buffer.
      bool caught = false;
      try {
        xbr_put(remote_src, landing, 64, 1, 1);
      } catch (const SanViolationError& e) {
        caught = true;
        EXPECT_EQ(e.kind(), SanViolationKind::kNbReadBeforeWait);
        EXPECT_STREQ(e.fn(), "xbr_put");
        EXPECT_NE(std::string(e.what()).find("xbr_wait"), std::string::npos)
            << e.what();
      }
      EXPECT_TRUE(caught);
      xbr_wait();
      // After the wait the zone is closed and the same access is legitimate.
      EXPECT_NO_THROW(xbr_put(remote_src, landing, 64, 1, 1));
      EXPECT_EQ(landing[0], 101);
    }
    xbrtime_barrier();
    xbrtime_free(landing);
    xbrtime_free(remote_src);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 1u);
  EXPECT_GT(machine.sanitizer().counters().nb_tracked, 0u);
}

TEST(NonblockingTest, BarrierAlsoClosesOpenLandingZones) {
  Machine machine(config(2, SanMode::kFull));
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    auto* remote_src = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    auto* landing = static_cast<long*>(xbrtime_malloc(64 * sizeof(long)));
    xbrtime_barrier();
    if (pe.rank() == 0) {
      xbr_get_nb(landing, remote_src, 64, 1, 1);
    }
    xbrtime_barrier();  // drains pending transfers => closes landing zones
    if (pe.rank() == 0) {
      EXPECT_NO_THROW(xbr_put(remote_src, landing, 64, 1, 1));
    }
    xbrtime_barrier();
    xbrtime_free(landing);
    xbrtime_free(remote_src);
    xbrtime_close();
  });
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

}  // namespace
}  // namespace xbgas
