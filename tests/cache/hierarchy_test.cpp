#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

namespace xbgas {
namespace {

TEST(HierarchyTest, DefaultsMatchPaperConfig) {
  // Paper §5.1: 256-entry TLB, 8-way 16KB L1, 8-way 8MB L2.
  CacheHierarchy h;
  EXPECT_EQ(h.l1().geometry().size_bytes, 16u * 1024);
  EXPECT_EQ(h.l1().geometry().ways, 8u);
  EXPECT_EQ(h.l2().geometry().size_bytes, 8u * 1024 * 1024);
  EXPECT_EQ(h.l2().geometry().ways, 8u);
  EXPECT_EQ(h.tlb().geometry().entries, 256u);
}

TEST(HierarchyTest, ColdAccessPaysTlbAndDram) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  EXPECT_EQ(h.access(0, 8), c.tlb_miss_cycles + c.dram_cycles);
}

TEST(HierarchyTest, WarmAccessPaysL1Hit) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  (void)h.access(0, 8);
  EXPECT_EQ(h.access(0, 8), c.l1_hit_cycles);
}

TEST(HierarchyTest, L2HitAfterL1Eviction) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  (void)h.access(0, 8);
  // Evict line 0 from L1 (16KB, 32 sets): touch 9+ lines mapping to set 0.
  // Line addresses with identical L1 set: multiples of 32 lines = 2KB.
  for (int k = 1; k <= 16; ++k) {
    (void)h.access(static_cast<std::uint64_t>(k) * 2048, 8);
  }
  // L2 (16384 sets) still holds line 0 -> L2 hit, not DRAM.
  const auto cycles = h.access(0, 8);
  EXPECT_EQ(cycles, c.l2_hit_cycles);
}

TEST(HierarchyTest, AccessSpanningTwoLines) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  (void)h.access(0, 128);  // warm two lines + page
  EXPECT_EQ(h.access(60, 8), 2 * c.l1_hit_cycles);  // straddles lines 0 and 1
}

TEST(HierarchyTest, AccessSpanningTwoPages) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  const auto cycles = h.access(4096 - 4, 8);
  // Two TLB misses (both pages cold) + two line fills from DRAM.
  EXPECT_EQ(cycles, 2 * c.tlb_miss_cycles + 2 * c.dram_cycles);
}

TEST(HierarchyTest, FlushRestoresColdState) {
  CacheHierarchy h;
  const auto& c = h.config().costs;
  (void)h.access(0, 8);
  h.flush();
  EXPECT_EQ(h.access(0, 8), c.tlb_miss_cycles + c.dram_cycles);
}

TEST(HierarchyTest, StreamingOverL2SizeMissesInSteadyState) {
  // Walk 16MB twice with 64B steps: working set is 2x the L2, so the
  // second pass still misses to DRAM for most lines (LRU streaming).
  HierarchyConfig cfg;
  CacheHierarchy h(cfg);
  const std::size_t span = 16u * 1024 * 1024;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 64) (void)h.access(a, 8);
  }
  EXPECT_LT(h.l2().stats().hit_rate(), 0.05);
}

TEST(HierarchyTest, WorkingSetInsideL2HitsInSteadyState) {
  HierarchyConfig cfg;
  CacheHierarchy h(cfg);
  const std::size_t span = 4u * 1024 * 1024;  // half the L2
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 64) (void)h.access(a, 8);
  }
  EXPECT_GT(h.l2().stats().hit_rate(), 0.6);
}

TEST(HierarchyTest, ResetStatsKeepsContents) {
  CacheHierarchy h;
  (void)h.access(0, 8);
  h.reset_stats();
  EXPECT_EQ(h.l1().stats().accesses, 0u);
  // Contents survive: the next access is still an L1 hit.
  EXPECT_EQ(h.access(0, 8), h.config().costs.l1_hit_cycles);
}

}  // namespace
}  // namespace xbgas
