#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

// A small, fully-controllable geometry: 4 sets x 2 ways x 64B lines.
CacheGeometry tiny() {
  return CacheGeometry{.size_bytes = 512, .ways = 2, .line_bytes = 64};
}

TEST(CacheTest, GeometryDerivesSetCount) {
  EXPECT_EQ(tiny().num_sets(), 4u);
  // Paper L1: 16KB, 8-way, 64B lines -> 32 sets.
  CacheGeometry l1{.size_bytes = 16 * 1024, .ways = 8, .line_bytes = 64};
  EXPECT_EQ(l1.num_sets(), 32u);
  // Paper L2: 8MB, 8-way -> 16384 sets.
  CacheGeometry l2{.size_bytes = 8 * 1024 * 1024, .ways = 8, .line_bytes = 64};
  EXPECT_EQ(l2.num_sets(), 16384u);
}

TEST(CacheTest, ColdMissThenHit) {
  SetAssocCache cache(tiny());
  EXPECT_FALSE(cache.access_line(0));
  EXPECT_TRUE(cache.access_line(0));
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheTest, WaysHoldConflictingLines) {
  SetAssocCache cache(tiny());
  // Lines 0 and 4 map to set 0 (4 sets); both fit in the 2 ways.
  cache.access_line(0);
  cache.access_line(4);
  EXPECT_TRUE(cache.access_line(0));
  EXPECT_TRUE(cache.access_line(4));
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  SetAssocCache cache(tiny());
  cache.access_line(0);  // set 0
  cache.access_line(4);  // set 0
  cache.access_line(0);  // touch 0 -> 4 becomes LRU
  cache.access_line(8);  // set 0: evicts 4
  EXPECT_TRUE(cache.access_line(0));
  EXPECT_FALSE(cache.access_line(4));  // was evicted
}

TEST(CacheTest, DistinctSetsDoNotInterfere) {
  SetAssocCache cache(tiny());
  for (std::uint64_t line = 0; line < 4; ++line) cache.access_line(line);
  for (std::uint64_t line = 0; line < 4; ++line) {
    EXPECT_TRUE(cache.access_line(line));
  }
}

TEST(CacheTest, ByteAccessTouchesSpannedLines) {
  SetAssocCache cache(tiny());
  // 128-byte access starting at byte 32 spans lines 0..2 -> 3 misses.
  EXPECT_EQ(cache.access(32, 128), 3u);
  EXPECT_EQ(cache.access(32, 128), 0u);
}

TEST(CacheTest, SingleByteAccess) {
  SetAssocCache cache(tiny());
  EXPECT_EQ(cache.access(63, 1), 1u);
  EXPECT_EQ(cache.access(63, 0), 0u);  // size-0 treated as 1 byte, now hits
}

TEST(CacheTest, FlushInvalidatesEverything) {
  SetAssocCache cache(tiny());
  cache.access_line(1);
  cache.access_line(2);
  cache.flush();
  EXPECT_FALSE(cache.access_line(1));
  EXPECT_FALSE(cache.access_line(2));
}

TEST(CacheTest, WorkingSetLargerThanCacheThrashes) {
  SetAssocCache cache(tiny());  // 8 lines total
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t line = 0; line < 64; line += 4) {
      cache.access_line(line);  // 16 lines, all mapping over 4 sets
    }
  }
  // Every set sees 4 distinct tags with 2 ways in strict rotation: no reuse
  // distance fits, so everything misses.
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CacheTest, WorkingSetSmallerThanCacheHitsSteadyState) {
  SetAssocCache cache(tiny());
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t line = 0; line < 8; ++line) cache.access_line(line);
  }
  // 8 lines fill the cache exactly: only the first pass misses.
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().hits, 72u);
}

TEST(CacheTest, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(CacheGeometry{.size_bytes = 100,
                                           .ways = 3,
                                           .line_bytes = 64}),
               Error);
  EXPECT_THROW(SetAssocCache(CacheGeometry{.size_bytes = 512,
                                           .ways = 2,
                                           .line_bytes = 63}),
               Error);
}

TEST(CacheTest, HitRateComputation) {
  SetAssocCache cache(tiny());
  cache.access_line(0);
  cache.access_line(0);
  cache.access_line(0);
  cache.access_line(0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.75);
}

}  // namespace
}  // namespace xbgas
