#include "cache/tlb.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace xbgas {
namespace {

TlbGeometry tiny() {
  return TlbGeometry{.entries = 8, .ways = 2, .page_bytes = 4096};
}

TEST(TlbTest, PaperGeometryIs256Entries) {
  Tlb tlb(TlbGeometry{});
  EXPECT_EQ(tlb.geometry().entries, 256u);
  EXPECT_EQ(tlb.geometry().num_sets(), 64u);
}

TEST(TlbTest, SamePageHitsAfterFill) {
  Tlb tlb(tiny());
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1FFF));  // same 4K page
  EXPECT_FALSE(tlb.access(0x2000)); // next page
}

TEST(TlbTest, LruWithinSet) {
  Tlb tlb(tiny());  // 4 sets x 2 ways
  // Pages 0, 4, 8 share set 0 (vpn mod 4).
  const std::uint64_t page = 4096;
  tlb.access(0 * page);
  tlb.access(4 * page);
  tlb.access(0 * page);   // 4 becomes LRU
  tlb.access(8 * page);   // evicts 4
  EXPECT_TRUE(tlb.access(0 * page));
  EXPECT_FALSE(tlb.access(4 * page));
}

TEST(TlbTest, FlushEmptiesEverything) {
  Tlb tlb(tiny());
  tlb.access(0x1000);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x1000));
}

TEST(TlbTest, WideWorkingSetThrashes) {
  Tlb tlb(tiny());  // 8 entries
  const std::uint64_t page = 4096;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t p = 0; p < 32; p += 4) tlb.access(p * page);
  }
  EXPECT_EQ(tlb.stats().hits, 0u);
}

TEST(TlbTest, RejectsBadGeometry) {
  EXPECT_THROW(Tlb(TlbGeometry{.entries = 7, .ways = 2, .page_bytes = 4096}),
               Error);
  EXPECT_THROW(Tlb(TlbGeometry{.entries = 8, .ways = 2, .page_bytes = 1000}),
               Error);
}

TEST(TlbTest, StatsAndReset) {
  Tlb tlb(tiny());
  tlb.access(0);
  tlb.access(0);
  EXPECT_EQ(tlb.stats().accesses, 2u);
  EXPECT_DOUBLE_EQ(tlb.stats().hit_rate(), 0.5);
  tlb.reset_stats();
  EXPECT_EQ(tlb.stats().accesses, 0u);
}

}  // namespace
}  // namespace xbgas
