#include "isa/hart.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "isa/builder.hpp"

namespace xbgas::isa {
namespace {

/// Flat test memory with optional remote objects; each access costs 1 cycle.
class TestPort final : public GlobalMemoryPort {
 public:
  explicit TestPort(std::size_t local_bytes = 4096) : local_(local_bytes) {}

  std::vector<std::uint8_t>& object(std::uint64_t id) {
    auto [it, inserted] = remote_.try_emplace(id, std::vector<std::uint8_t>(4096));
    return it->second;
  }

  std::vector<std::uint8_t>& local() { return local_; }

  MemAccessResult load(std::uint64_t object_id, std::uint64_t addr,
                       unsigned width, std::uint64_t* value) override {
    auto& mem = storage(object_id);
    if (addr + width > mem.size()) throw Error("TestPort: load OOB");
    std::uint64_t raw = 0;
    std::memcpy(&raw, mem.data() + addr, width);
    *value = raw;
    return {.cycles = 1};
  }

  MemAccessResult store(std::uint64_t object_id, std::uint64_t addr,
                        unsigned width, std::uint64_t value) override {
    auto& mem = storage(object_id);
    if (addr + width > mem.size()) throw Error("TestPort: store OOB");
    std::memcpy(mem.data() + addr, &value, width);
    return {.cycles = 1};
  }

 private:
  std::vector<std::uint8_t>& storage(std::uint64_t id) {
    if (id == 0) return local_;
    const auto it = remote_.find(id);
    if (it == remote_.end()) throw Error("TestPort: unknown object");
    return it->second;
  }

  std::vector<std::uint8_t> local_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> remote_;
};

/// Run a program to ecall and return the hart for inspection.
Hart run_program(TestPort& port, const Program& program,
                 const HartConfig& config = HartConfig{}) {
  Hart hart(port, config);
  hart.load_program(program);
  const auto halt = hart.run();
  EXPECT_EQ(halt, Hart::Halt::kEcall);
  return hart;
}

TEST(HartAluTest, AddSubLogic) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 100).li(2, 7);
  b.add(3, 1, 2).sub(4, 1, 2).xor_(5, 1, 2).or_(6, 1, 2).and_(7, 1, 2);
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(3), 107u);
  EXPECT_EQ(hart.regs().x(4), 93u);
  EXPECT_EQ(hart.regs().x(5), 100u ^ 7u);
  EXPECT_EQ(hart.regs().x(6), 100u | 7u);
  EXPECT_EQ(hart.regs().x(7), 100u & 7u);
}

TEST(HartAluTest, SetLessThanSignedAndUnsigned) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, -1).li(2, 1);
  b.slt(3, 1, 2);    // -1 < 1 signed -> 1
  b.sltu(4, 1, 2);   // 0xFFFF... < 1 unsigned -> 0
  b.slti(5, 1, 0);   // -1 < 0 -> 1
  b.sltiu(6, 2, -1); // 1 < 0xFFFF...F -> 1 (imm sign-extends then unsigned)
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(3), 1u);
  EXPECT_EQ(hart.regs().x(4), 0u);
  EXPECT_EQ(hart.regs().x(5), 1u);
  EXPECT_EQ(hart.regs().x(6), 1u);
}

TEST(HartAluTest, ShiftSemantics) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, -8);
  b.srai(2, 1, 1);   // arithmetic: -4
  b.srli(3, 1, 1);   // logical: huge positive
  b.slli(4, 1, 2);   // -32
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(2)), -4);
  EXPECT_EQ(hart.regs().x(3), 0xFFFFFFFFFFFFFFF8ull >> 1);
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(4)), -32);
}

TEST(HartAluTest, Word32OpsSignExtend) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 0x7FFFFFFF);
  b.addiw(2, 1, 1);   // wraps to INT32_MIN, sign-extended
  b.addw(3, 1, 1);    // 0xFFFFFFFE -> -2
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(2)),
            std::int64_t{-2147483648});
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(3)), -2);
}

TEST(HartAluTest, LoopSumsFirstHundredIntegers) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 100).li(2, 0);
  b.label("loop");
  b.add(2, 2, 1);
  b.addi(1, 1, -1);
  b.bne(1, 0, "loop");
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(2), 5050u);
  EXPECT_EQ(hart.stats().branches_taken, 99u);
}

TEST(HartAluTest, LiMaterializesFull64BitConstants) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{2047}, std::int64_t{-2048},
        std::int64_t{0x7FFFFFFF}, std::int64_t{-2147483648},
        std::int64_t{0x123456789ABCDEF0}, std::int64_t{-1},
        std::int64_t{0x7FFFFFFFFFFFFFFF},
        std::numeric_limits<std::int64_t>::min(),
        std::int64_t{0xDEADBEEF}, std::int64_t{1} << 46}) {
    TestPort port;
    ProgramBuilder b;
    b.li(5, v).ecall();
    Hart hart = run_program(port, b.build());
    EXPECT_EQ(hart.regs().x(5), static_cast<std::uint64_t>(v)) << "v=" << v;
  }
}

TEST(HartMulDivTest, MulAndHighHalves) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, -3).li(2, 7);
  b.mul(3, 1, 2);
  b.mulhu(4, 1, 2);  // high half of (2^64-3)*7
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(3)), -21);
  EXPECT_EQ(hart.regs().x(4), 6u);  // (2^64-3)*7 = 7*2^64 - 21 -> high = 6
}

TEST(HartMulDivTest, DivisionSpecialCases) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 7).li(2, 0);
  b.div(3, 1, 2);    // div by zero -> -1
  b.divu(4, 1, 2);   // -> 2^64-1
  b.rem(5, 1, 2);    // -> dividend
  b.li(6, std::numeric_limits<std::int64_t>::min()).li(7, -1);
  b.div(8, 6, 7);    // overflow -> dividend
  b.rem(9, 6, 7);    // -> 0
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(3)), -1);
  EXPECT_EQ(hart.regs().x(4), ~std::uint64_t{0});
  EXPECT_EQ(hart.regs().x(5), 7u);
  EXPECT_EQ(hart.regs().x(8),
            static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::min()));
  EXPECT_EQ(hart.regs().x(9), 0u);
}

TEST(HartMemTest, StoreLoadRoundTripAllWidths) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 0x1122334455667788);
  b.li(2, 64);
  b.sd(1, 2, 0).sw(1, 2, 8).sh(1, 2, 12).sb(1, 2, 14);
  b.ld(3, 2, 0).lwu(4, 2, 8).lhu(5, 2, 12).lbu(6, 2, 14);
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(3), 0x1122334455667788u);
  EXPECT_EQ(hart.regs().x(4), 0x55667788u);
  EXPECT_EQ(hart.regs().x(5), 0x7788u);
  EXPECT_EQ(hart.regs().x(6), 0x88u);
}

TEST(HartMemTest, SignedLoadsSignExtend) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 0xFF).li(2, 0);
  b.sb(1, 2, 0);
  b.lb(3, 2, 0);   // -1
  b.lbu(4, 2, 0);  // 255
  b.li(1, 0x8000);
  b.sh(1, 2, 8);
  b.lh(5, 2, 8);   // -32768
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(3)), -1);
  EXPECT_EQ(hart.regs().x(4), 255u);
  EXPECT_EQ(static_cast<std::int64_t>(hart.regs().x(5)), -32768);
}

TEST(HartXbgasTest, EldWithZeroExtRegisterIsLocal) {
  TestPort port;
  std::uint64_t v = 0xCAFEBABE12345678;
  std::memcpy(port.local().data() + 128, &v, 8);
  ProgramBuilder b;
  b.li(6, 128);
  b.eld(5, 6, 0);  // e6 == 0 -> local access (paper §3.2)
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(5), v);
  EXPECT_EQ(hart.stats().remote_loads, 0u);
}

TEST(HartXbgasTest, EldEsdTargetRemoteObject) {
  TestPort port;
  auto& obj3 = port.object(3);
  std::uint64_t v = 0x1111222233334444;
  std::memcpy(obj3.data() + 16, &v, 8);

  ProgramBuilder b;
  b.li(7, 3);
  b.eaddie(6, 7, 0);  // e6 <- 3
  b.li(6, 16);
  b.eld(5, 6, 0);     // load from object 3
  b.esd(5, 6, 64);    // store back to object 3 at +64
  b.ecall();
  Hart hart = run_program(port, b.build());

  EXPECT_EQ(hart.regs().x(5), v);
  std::uint64_t stored = 0;
  std::memcpy(&stored, obj3.data() + 80, 8);
  EXPECT_EQ(stored, v);
  EXPECT_EQ(hart.stats().remote_loads, 1u);
  EXPECT_EQ(hart.stats().remote_stores, 1u);
}

TEST(HartXbgasTest, RawFormsUseExplicitExtRegister) {
  TestPort port;
  auto& obj5 = port.object(5);
  std::uint64_t v = 0xA5A5A5A55A5A5A5A;
  std::memcpy(obj5.data() + 40, &v, 8);

  ProgramBuilder b;
  b.li(9, 5);
  b.eaddie(10, 9, 0);  // e10 <- 5 (decoupled from the x10 base register)
  b.li(4, 40);
  b.erld(8, 4, 10);    // x8 <- object e10 at x4
  b.li(4, 48);
  b.ersd(8, 4, 10);    // object e10 at x4 <- x8
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(8), v);
  std::uint64_t stored = 0;
  std::memcpy(&stored, obj5.data() + 48, 8);
  EXPECT_EQ(stored, v);
}

TEST(HartXbgasTest, EaddixReadsExtRegister) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 77);
  b.eaddie(3, 1, 10);  // e3 <- 87
  b.eaddix(2, 3, 5);   // x2 <- e3 + 5 = 92
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().e(3), 87u);
  EXPECT_EQ(hart.regs().x(2), 92u);
}

TEST(HartXbgasTest, DisabledExtensionRejectsEInstructions) {
  TestPort port;
  ProgramBuilder b;
  b.eld(5, 6, 0).ecall();
  HartConfig config;
  config.xbgas_enabled = false;
  Hart hart(port, config);
  hart.load_program(b.build());
  EXPECT_THROW(hart.run(), Error);
}

TEST(HartXbgasTest, DisabledExtensionStillRunsRv64i) {
  // Paper §3.2: with the extension disabled, plain programs run normally.
  TestPort port;
  ProgramBuilder b;
  b.li(1, 21).add(2, 1, 1).ecall();
  HartConfig config;
  config.xbgas_enabled = false;
  Hart hart(port, config);
  hart.load_program(b.build());
  EXPECT_EQ(hart.run(), Hart::Halt::kEcall);
  EXPECT_EQ(hart.regs().x(2), 42u);
}

TEST(HartControlTest, EbreakHalts) {
  TestPort port;
  ProgramBuilder b;
  b.ebreak();
  Hart hart(port);
  hart.load_program(b.build());
  EXPECT_EQ(hart.run(), Hart::Halt::kEbreak);
}

TEST(HartControlTest, MaxStepsBoundsRunaway) {
  TestPort port;
  ProgramBuilder b;
  b.label("spin").j("spin");
  Hart hart(port);
  hart.load_program(b.build());
  EXPECT_EQ(hart.run(100), Hart::Halt::kMaxSteps);
  EXPECT_EQ(hart.stats().instructions, 100u);
}

TEST(HartControlTest, FallingOffProgramEndThrows) {
  TestPort port;
  ProgramBuilder b;
  b.nop();
  Hart hart(port);
  hart.load_program(b.build());
  EXPECT_EQ(hart.step(), Hart::Halt::kNone);
  EXPECT_THROW(hart.step(), Error);
}

TEST(HartControlTest, JalLinksReturnAddress) {
  TestPort port;
  ProgramBuilder b;
  b.jal(1, "target");
  b.addi(2, 0, 99);  // skipped
  b.label("target");
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(1), 4u);
  EXPECT_EQ(hart.regs().x(2), 0u);
}

TEST(HartControlTest, CycleAccountingAtLeastOnePerInstruction) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 5).mul(2, 1, 1).div(3, 2, 1).ld(4, 0, 0).ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_GE(hart.cycles(), hart.stats().instructions);
  // mul and div must charge their extra latencies.
  const HartConfig cfg;
  EXPECT_GE(hart.cycles(), hart.stats().instructions + cfg.mul_cycles +
                               cfg.div_cycles);
}

TEST(HartControlTest, ResetClearsState) {
  TestPort port;
  ProgramBuilder b;
  b.li(1, 9).ecall();
  Hart hart = run_program(port, b.build());
  hart.reset();
  EXPECT_EQ(hart.pc(), 0u);
  EXPECT_EQ(hart.cycles(), 0u);
  EXPECT_EQ(hart.regs().x(1), 0u);
  EXPECT_EQ(hart.stats().instructions, 0u);
}

TEST(HartMemTest, MisalignedAccessRejectedByMachinePortContract) {
  // The hart itself delegates alignment to the port; TestPort accepts any
  // alignment, so emulate the production contract here by checking the
  // address arithmetic: eld with imm makes an odd address reachable.
  TestPort port;
  ProgramBuilder b;
  b.li(2, 3);
  b.ld(1, 2, 0);  // address 3, width 8: TestPort allows, value is defined
  b.ecall();
  Hart hart = run_program(port, b.build());
  EXPECT_EQ(hart.regs().x(1), 0u);
}

}  // namespace
}  // namespace xbgas::isa
