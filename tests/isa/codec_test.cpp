#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"

namespace xbgas::isa {
namespace {

TEST(CodecTest, GoldenRv64iEncodings) {
  // Reference encodings from the RISC-V user-level ISA (v2.0) — these pin
  // our standard-instruction encodings to the real architecture.
  EXPECT_EQ(encode({Op::kAddi, 1, 2, 0, 3}), 0x00310093u);    // addi x1,x2,3
  EXPECT_EQ(encode({Op::kAddi, 1, 1, 0, -1}), 0xFFF08093u);   // addi x1,x1,-1
  EXPECT_EQ(encode({Op::kLd, 5, 6, 0, 8}), 0x00833283u);      // ld x5,8(x6)
  EXPECT_EQ(encode({Op::kSd, 0, 10, 7, 16}), 0x00753823u);    // sd x7,16(x10)
  EXPECT_EQ(encode({Op::kAdd, 3, 1, 2}), 0x002081B3u);        // add x3,x1,x2
  EXPECT_EQ(encode({Op::kSub, 3, 1, 2}), 0x402081B3u);        // sub x3,x1,x2
  EXPECT_EQ(encode({Op::kLui, 7, 0, 0, 0x12345000}), 0x123453B7u);
  EXPECT_EQ(encode({Op::kJalr, 0, 1, 0, 0}), 0x00008067u);    // ret
  EXPECT_EQ(encode({Op::kEcall, 0, 0, 0, 0}), 0x00000073u);
  EXPECT_EQ(encode({Op::kEbreak, 0, 0, 0, 0}), 0x00100073u);
  EXPECT_EQ(encode({Op::kMul, 5, 6, 7}), 0x027302B3u);        // mul x5,x6,x7
}

TEST(CodecTest, GoldenBranchEncoding) {
  // beq x1, x2, +16 : imm 16 -> B-type fields
  EXPECT_EQ(encode({Op::kBeq, 0, 1, 2, 16}), 0x00208863u);
  // bne x3, x0, -4 (classic loop back-edge)
  EXPECT_EQ(encode({Op::kBne, 0, 3, 0, -4}), 0xFE019EE3u);
}

std::vector<Instruction> canonical_instructions() {
  // One representative per op with format-appropriate operand values,
  // including boundary immediates.
  std::vector<Instruction> out;
  const auto add = [&](Op op, std::uint8_t rd, std::uint8_t rs1,
                       std::uint8_t rs2, std::int64_t imm) {
    out.push_back({op, rd, rs1, rs2, imm});
  };

  for (std::int64_t imm : {std::int64_t{0}, std::int64_t{1},
                           std::int64_t{-1}, std::int64_t{2047},
                           std::int64_t{-2048}}) {
    for (Op op : {Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri,
                  Op::kAndi, Op::kAddiw, Op::kJalr, Op::kLb, Op::kLh, Op::kLw,
                  Op::kLd, Op::kLbu, Op::kLhu, Op::kLwu, Op::kElb, Op::kElh,
                  Op::kElw, Op::kEld, Op::kElbu, Op::kElhu, Op::kElwu,
                  Op::kEaddie, Op::kEaddix}) {
      add(op, 5, 10, 0, imm);
    }
    for (Op op : {Op::kSb, Op::kSh, Op::kSw, Op::kSd, Op::kEsb, Op::kEsh,
                  Op::kEsw, Op::kEsd}) {
      add(op, 0, 10, 17, imm);
    }
  }
  for (std::int64_t shamt : {std::int64_t{0}, std::int64_t{1},
                             std::int64_t{31}, std::int64_t{63}}) {
    for (Op op : {Op::kSlli, Op::kSrli, Op::kSrai}) add(op, 3, 4, 0, shamt);
  }
  for (std::int64_t shamt : {std::int64_t{0}, std::int64_t{31}}) {
    for (Op op : {Op::kSlliw, Op::kSrliw, Op::kSraiw}) add(op, 3, 4, 0, shamt);
  }
  for (Op op : {Op::kAdd, Op::kSub, Op::kSll, Op::kSlt, Op::kSltu, Op::kXor,
                Op::kSrl, Op::kSra, Op::kOr, Op::kAnd, Op::kAddw, Op::kSubw,
                Op::kSllw, Op::kSrlw, Op::kSraw, Op::kMul, Op::kMulh,
                Op::kMulhsu, Op::kMulhu, Op::kDiv, Op::kDivu, Op::kRem,
                Op::kRemu, Op::kMulw, Op::kDivw, Op::kDivuw, Op::kRemw,
                Op::kRemuw, Op::kErlb, Op::kErlh, Op::kErlw, Op::kErld,
                Op::kErlbu, Op::kErlhu, Op::kErlwu, Op::kErsb, Op::kErsh,
                Op::kErsw, Op::kErsd}) {
    add(op, 1, 2, 3, 0);
    add(op, 31, 30, 29, 0);
  }
  for (std::int64_t imm : {std::int64_t{0}, std::int64_t{4096},
                           std::int64_t{-4096},
                           std::int64_t{0x7FFFF000},
                           -(std::int64_t{1} << 31)}) {
    add(Op::kLui, 9, 0, 0, imm);
    add(Op::kAuipc, 9, 0, 0, imm);
  }
  for (std::int64_t imm : {std::int64_t{0}, std::int64_t{4},
                           std::int64_t{-4}, std::int64_t{4094},
                           std::int64_t{-4096}}) {
    for (Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu,
                  Op::kBgeu}) {
      add(op, 0, 6, 7, imm);
    }
  }
  for (std::int64_t imm : {std::int64_t{0}, std::int64_t{2},
                           std::int64_t{-2}, std::int64_t{1 << 20} - 2,
                           -(std::int64_t{1} << 20)}) {
    add(Op::kJal, 1, 0, 0, imm);
  }
  add(Op::kEcall, 0, 0, 0, 0);
  add(Op::kEbreak, 0, 0, 0, 0);
  return out;
}

TEST(CodecTest, EncodeDecodeRoundTripsEveryOp) {
  for (const Instruction& inst : canonical_instructions()) {
    const std::uint32_t word = encode(inst);
    const Instruction back = decode(word);
    EXPECT_EQ(back, inst) << to_string(inst) << " -> 0x" << std::hex << word
                          << " -> " << to_string(back);
  }
}

TEST(CodecTest, XbgasOpcodesLiveInCustomSpace) {
  // xBGAS must not collide with standard RV64I major opcodes.
  const std::uint32_t eld = encode({Op::kEld, 1, 2, 0, 0});
  const std::uint32_t esd = encode({Op::kEsd, 0, 2, 3, 0});
  const std::uint32_t erld = encode({Op::kErld, 1, 2, 3, 0});
  const std::uint32_t eaddie = encode({Op::kEaddie, 1, 2, 0, 0});
  EXPECT_EQ(eld & 0x7F, 0x0Bu);
  EXPECT_EQ(esd & 0x7F, 0x2Bu);
  EXPECT_EQ(erld & 0x7F, 0x5Bu);
  EXPECT_EQ(eaddie & 0x7F, 0x7Bu);
}

TEST(CodecTest, IllegalWordsThrow) {
  EXPECT_THROW(decode(0x00000000), Error);  // all-zero is reserved
  EXPECT_THROW(decode(0xFFFFFFFF), Error);
  EXPECT_THROW(decode(0x00002063), Error);  // branch funct3=010 undefined
  EXPECT_THROW(decode(0x0000705B), Error);  // custom-2 funct7 undefined... (funct7=0, funct3=7: erl width 7 undefined)
}

TEST(CodecTest, TryDecodeNeverThrows) {
  Xoshiro256ss rng(2024);
  int decoded = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const auto inst = try_decode(word);  // must not crash on any bit pattern
    if (inst) ++decoded;
  }
  EXPECT_GT(decoded, 0);
}

TEST(CodecTest, RandomRoundTripThroughDecoder) {
  // Fuzz: any word that decodes must re-encode to a word that decodes to
  // the same instruction (encode may normalize don't-care bits).
  Xoshiro256ss rng(7);
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const auto inst = try_decode(word);
    if (!inst) continue;
    const auto reencoded = encode(*inst);
    EXPECT_EQ(decode(reencoded), *inst);
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(CodecTest, ImmediateRangeChecksThrow) {
  EXPECT_THROW(encode({Op::kAddi, 1, 2, 0, 2048}), Error);
  EXPECT_THROW(encode({Op::kAddi, 1, 2, 0, -2049}), Error);
  EXPECT_THROW(encode({Op::kBeq, 0, 1, 2, 3}), Error);      // odd offset
  EXPECT_THROW(encode({Op::kBeq, 0, 1, 2, 4096}), Error);   // too far
  EXPECT_THROW(encode({Op::kLui, 1, 0, 0, 123}), Error);    // unaligned
  EXPECT_THROW(encode({Op::kSlli, 1, 2, 0, 64}), Error);    // shamt
  EXPECT_THROW(encode({Op::kJal, 1, 0, 0, 1}), Error);      // odd target
}

TEST(CodecTest, MnemonicsAreUniqueAndLowercase) {
  std::vector<std::string> names;
  for (int i = 0; i < static_cast<int>(Op::kCount); ++i) {
    names.emplace_back(mnemonic(static_cast<Op>(i)));
  }
  for (const auto& n : names) {
    EXPECT_NE(n, "?");
    for (char c : n) EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << n;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(CodecTest, DisassemblyShapes) {
  EXPECT_EQ(to_string({Op::kEld, 5, 6, 0, 16}), "eld x5, 16(x6)");
  EXPECT_EQ(to_string({Op::kEsd, 0, 6, 7, 8}), "esd x7, 8(x6)");
  EXPECT_EQ(to_string({Op::kErld, 5, 6, 7}), "erld x5, x6, e7");
  EXPECT_EQ(to_string({Op::kEaddie, 6, 7, 0}), "eaddie e6, x7, 0");
  EXPECT_EQ(to_string({Op::kAdd, 3, 1, 2}), "add x3, x1, x2");
}

}  // namespace
}  // namespace xbgas::isa
