#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "isa/hart.hpp"

namespace xbgas::isa {
namespace {

/// Reuse the flat-memory test port shape from hart_test.
class FlatPort final : public GlobalMemoryPort {
 public:
  std::vector<std::uint8_t> mem = std::vector<std::uint8_t>(4096);
  std::map<std::uint64_t, std::vector<std::uint8_t>> objects;

  MemAccessResult load(std::uint64_t id, std::uint64_t addr, unsigned width,
                       std::uint64_t* value) override {
    auto& m = storage(id);
    std::uint64_t raw = 0;
    std::memcpy(&raw, m.data() + addr, width);
    *value = raw;
    return {.cycles = 1};
  }
  MemAccessResult store(std::uint64_t id, std::uint64_t addr, unsigned width,
                        std::uint64_t value) override {
    std::memcpy(storage(id).data() + addr, &value, width);
    return {.cycles = 1};
  }

 private:
  std::vector<std::uint8_t>& storage(std::uint64_t id) {
    if (id == 0) return mem;
    auto [it, _] = objects.try_emplace(id, std::vector<std::uint8_t>(4096));
    return it->second;
  }
};

std::uint64_t run_and_read_x(const std::string& src, unsigned reg) {
  FlatPort port;
  Hart hart(port);
  hart.load_program(assemble(src));
  EXPECT_EQ(hart.run(), Hart::Halt::kEcall);
  return hart.regs().x(reg);
}

TEST(AssemblerTest, BasicArithmetic) {
  EXPECT_EQ(run_and_read_x("li x5, 40\n addi x5, x5, 2\n ecall\n", 5), 42u);
}

TEST(AssemblerTest, AbiRegisterNames) {
  EXPECT_EQ(run_and_read_x("li a0, 7\n li t0, 5\n add a1, a0, t0\n ecall", 11),
            12u);
  EXPECT_EQ(run_and_read_x("li s1, 3\n mv s2, s1\n ecall", 18), 3u);
  EXPECT_EQ(run_and_read_x("li sp, 100\n addi sp, sp, -4\n ecall", 2), 96u);
}

TEST(AssemblerTest, HexAndNegativeImmediates) {
  EXPECT_EQ(run_and_read_x("li x1, 0xFF\n ecall", 1), 255u);
  EXPECT_EQ(static_cast<std::int64_t>(
                run_and_read_x("li x1, -123\n ecall", 1)),
            -123);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const char* src = R"(
    # full-line comment
    li x3, 9      ; trailing comment

    ecall
  )";
  EXPECT_EQ(run_and_read_x(src, 3), 9u);
}

TEST(AssemblerTest, LabelsAndBackwardBranch) {
  const char* src = R"(
      li t0, 5
      li t1, 0
    loop:
      add t1, t1, t0
      addi t0, t0, -1
      bne t0, zero, loop
      ecall
  )";
  EXPECT_EQ(run_and_read_x(src, 6), 15u);  // t1 = 5+4+3+2+1
}

TEST(AssemblerTest, ForwardBranchAndJump) {
  const char* src = R"(
      li x1, 1
      beq x1, x1, skip
      li x2, 99       # must be skipped
    skip:
      j end
      li x3, 99       # must be skipped
    end:
      ecall
  )";
  FlatPort port;
  Hart hart(port);
  hart.load_program(assemble(src));
  ASSERT_EQ(hart.run(), Hart::Halt::kEcall);
  EXPECT_EQ(hart.regs().x(2), 0u);
  EXPECT_EQ(hart.regs().x(3), 0u);
}

TEST(AssemblerTest, LoadsAndStores) {
  const char* src = R"(
      li x1, 0x1122334455667788
      li x2, 64
      sd x1, 0(x2)
      lw x3, 0(x2)
      lbu x4, 7(x2)
      ld x5, (x2)      # empty offset defaults to 0
      ecall
  )";
  FlatPort port;
  Hart hart(port);
  hart.load_program(assemble(src));
  ASSERT_EQ(hart.run(), Hart::Halt::kEcall);
  EXPECT_EQ(hart.regs().x(3), 0x55667788u);
  EXPECT_EQ(hart.regs().x(4), 0x11u);
  EXPECT_EQ(hart.regs().x(5), 0x1122334455667788u);
}

TEST(AssemblerTest, XbgasRemoteSequence) {
  const char* src = R"(
      li x7, 3
      eaddie e6, x7, 0     # e6 <- object 3
      li x6, 16
      li x8, 0xBEEF
      esd x8, 0(x6)        # store to object 3
      eld x9, 0(x6)        # load it back
      erld x10, x6, e6     # raw form reads the same slot
      ecall
  )";
  FlatPort port;
  Hart hart(port);
  hart.load_program(assemble(src));
  ASSERT_EQ(hart.run(), Hart::Halt::kEcall);
  EXPECT_EQ(hart.regs().x(9), 0xBEEFu);
  EXPECT_EQ(hart.regs().x(10), 0xBEEFu);
  std::uint64_t raw = 0;
  std::memcpy(&raw, port.objects.at(3).data() + 16, 8);
  EXPECT_EQ(raw, 0xBEEFu);
}

TEST(AssemblerTest, RawStoreOperandOrder) {
  const Program p = assemble("ersd x7, x6, e9\n ecall");
  EXPECT_EQ(p.insts[0], (Instruction{Op::kErsd, 9, 6, 7, 0}));
}

TEST(AssemblerTest, RetPseudo) {
  const Program p = assemble("ret");
  EXPECT_EQ(p.insts[0], (Instruction{Op::kJalr, 0, 1, 0, 0}));
}

TEST(AssemblerTest, MTypeExtensionMnemonics) {
  EXPECT_EQ(run_and_read_x("li x1, 6\n li x2, 7\n mul x3, x1, x2\n ecall", 3),
            42u);
  EXPECT_EQ(run_and_read_x("li x1, 42\n li x2, 5\n remu x3, x1, x2\n ecall", 3),
            2u);
}

TEST(AssemblerTest, DisassembleRoundTrips) {
  const char* src = R"(
      li t0, 300
      addi t0, t0, 5
      sd t0, 8(sp)
      eld x9, 16(x6)
      erld x10, x6, e7
      eaddie e6, x7, 4
      ecall
  )";
  const Program first = assemble(src);
  // Disassemble (label-free, numeric offsets) and assemble again: the
  // instruction stream must be identical.
  std::string text;
  for (const auto& inst : first.insts) text += to_string(inst) + "\n";
  const Program second = assemble(text);
  EXPECT_EQ(first.insts, second.insts);
  EXPECT_EQ(first.words, second.words);
}

TEST(AssemblerTest, DisassemblyFormatting) {
  const Program p = assemble("nop\n ecall");
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("0: 00000013  addi x0, x0, 0"), std::string::npos);
  EXPECT_NE(text.find("4: 00000073  ecall"), std::string::npos);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  try {
    (void)assemble("nop\nbogus x1, x2\n");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AssemblerTest, RejectsMalformedInput) {
  EXPECT_THROW((void)assemble("addi x1, x2"), Error);          // missing imm
  EXPECT_THROW((void)assemble("addi x1, x2, x3"), Error);      // reg as imm
  EXPECT_THROW((void)assemble("ld x1, x2"), Error);            // no mem form
  EXPECT_THROW((void)assemble("erld x1, x2, x3"), Error);      // e reg needed
  EXPECT_THROW((void)assemble("bne x1, x2, 9zz"), Error);      // bad target
  EXPECT_THROW((void)assemble("beq x1, x2, nowhere"), Error);  // undefined
  EXPECT_THROW((void)assemble("addi x32, x0, 0"), Error);      // bad reg
  EXPECT_THROW((void)assemble("addi x1, x0, 99999"), Error);   // imm range
}

TEST(AssemblerTest, MultipleLabelsOnOneLine) {
  const Program p = assemble("a: b: nop\n j a\n");
  EXPECT_EQ(p.insts[1].imm, -4);
}

}  // namespace
}  // namespace xbgas::isa
