#include "isa/builder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/decoder.hpp"

namespace xbgas::isa {
namespace {

TEST(BuilderTest, EmitsDecodedAndEncodedForms) {
  ProgramBuilder b;
  b.addi(1, 0, 5).add(2, 1, 1).ecall();
  const Program p = b.build();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.insts[0], (Instruction{Op::kAddi, 1, 0, 0, 5}));
  EXPECT_EQ(p.insts[1], (Instruction{Op::kAdd, 2, 1, 1, 0}));
  EXPECT_EQ(p.insts[2].op, Op::kEcall);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(decode(p.words[i]), p.insts[i]);
  }
}

TEST(BuilderTest, BackwardBranchResolvesNegativeOffset) {
  ProgramBuilder b;
  b.addi(5, 0, 3);
  b.label("loop");
  b.addi(5, 5, -1);
  b.bne(5, 0, "loop");
  b.ecall();
  const Program p = b.build();
  EXPECT_EQ(p.insts[2].imm, -4);  // one instruction back
}

TEST(BuilderTest, ForwardBranchResolvesPositiveOffset) {
  ProgramBuilder b;
  b.beq(0, 0, "done");
  b.addi(1, 0, 1);
  b.addi(2, 0, 2);
  b.label("done");
  b.ecall();
  const Program p = b.build();
  EXPECT_EQ(p.insts[0].imm, 12);  // three instructions forward
}

TEST(BuilderTest, JumpToLabel) {
  ProgramBuilder b;
  b.j("end").addi(1, 0, 9).label("end").ecall();
  const Program p = b.build();
  EXPECT_EQ(p.insts[0].op, Op::kJal);
  EXPECT_EQ(p.insts[0].rd, 0);
  EXPECT_EQ(p.insts[0].imm, 8);
}

TEST(BuilderTest, UndefinedLabelThrowsAtBuild) {
  ProgramBuilder b;
  b.bne(1, 2, "nowhere").ecall();
  EXPECT_THROW(b.build(), Error);
}

TEST(BuilderTest, DuplicateLabelThrows) {
  ProgramBuilder b;
  b.label("x");
  EXPECT_THROW(b.label("x"), Error);
}

TEST(BuilderTest, RegisterRangeChecked) {
  ProgramBuilder b;
  EXPECT_THROW(b.addi(32, 0, 0), Error);
  EXPECT_THROW(b.add(0, 32, 0), Error);
}

TEST(BuilderTest, PseudoInstructions) {
  ProgramBuilder b;
  b.nop().mv(3, 4);
  const Program p = b.build();
  EXPECT_EQ(p.insts[0], (Instruction{Op::kAddi, 0, 0, 0, 0}));
  EXPECT_EQ(p.insts[1], (Instruction{Op::kAddi, 3, 4, 0, 0}));
}

TEST(BuilderTest, LiSmallImmediateIsSingleAddi) {
  ProgramBuilder b;
  b.li(5, 42);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.insts[0], (Instruction{Op::kAddi, 5, 0, 0, 42}));
}

TEST(BuilderTest, Li32BitUsesLuiAddiw) {
  ProgramBuilder b;
  b.li(5, 0x12345678);
  const Program p = b.build();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.insts[0].op, Op::kLui);
  EXPECT_EQ(p.insts[1].op, Op::kAddiw);
}

TEST(BuilderTest, RawStoreOperandPlacement) {
  ProgramBuilder b;
  b.ersd(/*rs2=*/7, /*rs1=*/6, /*ext=*/9);
  const Program p = b.build();
  // e-register index rides in the rd field for raw stores.
  EXPECT_EQ(p.insts[0], (Instruction{Op::kErsd, 9, 6, 7, 0}));
  EXPECT_EQ(decode(p.words[0]), p.insts[0]);
}

TEST(BuilderTest, XbgasSequenceRoundTrips) {
  ProgramBuilder b;
  b.li(7, 3);
  b.eaddie(6, 7, 0);
  b.eld(8, 6, 16);
  b.esd(8, 6, 24);
  b.erld(9, 6, 6);
  b.ersd(9, 6, 6);
  b.ecall();
  const Program p = b.build();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(decode(p.words[i]), p.insts[i]) << "index " << i;
  }
}

TEST(BuilderTest, CurrentIndexTracksEmission) {
  ProgramBuilder b;
  EXPECT_EQ(b.current_index(), 0u);
  b.nop().nop();
  EXPECT_EQ(b.current_index(), 2u);
}

}  // namespace
}  // namespace xbgas::isa
