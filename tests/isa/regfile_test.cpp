#include "isa/regfile.hpp"

#include <gtest/gtest.h>

namespace xbgas::isa {
namespace {

TEST(RegFileTest, X0IsHardwiredToZero) {
  RegFile regs;
  regs.set_x(0, 0xDEADBEEF);
  EXPECT_EQ(regs.x(0), 0u);
}

TEST(RegFileTest, XRegistersHoldValues) {
  RegFile regs;
  for (unsigned i = 1; i < 32; ++i) regs.set_x(i, i * 1000);
  for (unsigned i = 1; i < 32; ++i) EXPECT_EQ(regs.x(i), i * 1000);
}

TEST(RegFileTest, ERegistersAreIndependentOfXRegisters) {
  // Figure 1: the extended register file sits alongside x0-x31; e[i] and
  // x[i] are distinct architectural state.
  RegFile regs;
  regs.set_x(5, 111);
  regs.set_e(5, 222);
  EXPECT_EQ(regs.x(5), 111u);
  EXPECT_EQ(regs.e(5), 222u);
}

TEST(RegFileTest, E0IsWritableUnlikeX0) {
  // e-register value 0 means "local PE", but e0 itself is an ordinary
  // register: writing it is how code targets a remote object via e0.
  RegFile regs;
  regs.set_e(0, 42);
  EXPECT_EQ(regs.e(0), 42u);
}

TEST(RegFileTest, ClearZeroesBothFiles) {
  RegFile regs;
  regs.set_x(3, 1);
  regs.set_e(7, 2);
  regs.clear();
  EXPECT_EQ(regs.x(3), 0u);
  EXPECT_EQ(regs.e(7), 0u);
}

TEST(RegFileTest, DefaultStateIsAllZero) {
  RegFile regs;
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(regs.x(i), 0u);
    EXPECT_EQ(regs.e(i), 0u);  // all-local by default: plain RV64I behaviour
  }
}

}  // namespace
}  // namespace xbgas::isa
