#include "olb/olb.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"

namespace xbgas {
namespace {

TEST(OlbTest, ObjectIdConventionIsRankPlusOne) {
  EXPECT_EQ(object_id_for_pe(0), 1u);
  EXPECT_EQ(object_id_for_pe(7), 8u);
  EXPECT_EQ(pe_for_object_id(1), 0);
  EXPECT_EQ(pe_for_object_id(8), 7);
}

TEST(OlbTest, LocalShortcutReturnsNullAndCounts) {
  ObjectLookasideBuffer olb;
  EXPECT_EQ(olb.lookup(kLocalObjectId), nullptr);
  EXPECT_EQ(olb.stats().local_shortcuts, 1u);
  EXPECT_EQ(olb.stats().lookups, 1u);
  EXPECT_EQ(olb.stats().misses, 0u);
}

TEST(OlbTest, InsertThenLookupHits) {
  ObjectLookasideBuffer olb;
  std::array<std::byte, 64> segment{};
  olb.insert(OlbEntry{.object_id = 3, .pe = 2, .segment_base = segment.data(),
                      .segment_size = segment.size()});
  const OlbEntry* e = olb.lookup(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pe, 2);
  EXPECT_EQ(e->segment_base, segment.data());
  EXPECT_EQ(e->segment_size, 64u);
  EXPECT_EQ(olb.stats().hits, 1u);
}

TEST(OlbTest, UnknownIdMisses) {
  ObjectLookasideBuffer olb;
  EXPECT_EQ(olb.lookup(42), nullptr);
  EXPECT_EQ(olb.stats().misses, 1u);
}

TEST(OlbTest, ReinsertOverwrites) {
  ObjectLookasideBuffer olb;
  std::array<std::byte, 64> seg1{}, seg2{};
  olb.insert(OlbEntry{.object_id = 5, .pe = 1, .segment_base = seg1.data(),
                      .segment_size = 64});
  olb.insert(OlbEntry{.object_id = 5, .pe = 4, .segment_base = seg2.data(),
                      .segment_size = 32});
  const OlbEntry* e = olb.lookup(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pe, 4);
  EXPECT_EQ(e->segment_base, seg2.data());
}

TEST(OlbTest, InsertingLocalIdIsRejected) {
  ObjectLookasideBuffer olb;
  std::array<std::byte, 8> seg{};
  EXPECT_THROW(olb.insert(OlbEntry{.object_id = kLocalObjectId,
                                   .pe = 0,
                                   .segment_base = seg.data(),
                                   .segment_size = 8}),
               Error);
}

TEST(OlbTest, EntryCountIgnoresHoles) {
  ObjectLookasideBuffer olb;
  std::array<std::byte, 8> seg{};
  olb.insert(OlbEntry{.object_id = 2, .pe = 1, .segment_base = seg.data(),
                      .segment_size = 8});
  olb.insert(OlbEntry{.object_id = 9, .pe = 8, .segment_base = seg.data(),
                      .segment_size = 8});
  EXPECT_EQ(olb.entry_count(), 2u);
}

TEST(OlbTest, PeekDoesNotTouchStats) {
  ObjectLookasideBuffer olb;
  std::array<std::byte, 8> seg{};
  olb.insert(OlbEntry{.object_id = 2, .pe = 1, .segment_base = seg.data(),
                      .segment_size = 8});
  EXPECT_NE(olb.peek(2), nullptr);
  EXPECT_EQ(olb.peek(3), nullptr);
  EXPECT_EQ(olb.peek(kLocalObjectId), nullptr);
  EXPECT_EQ(olb.stats().lookups, 0u);
}

TEST(OlbTest, ResetStats) {
  ObjectLookasideBuffer olb;
  (void)olb.lookup(0);
  (void)olb.lookup(1);
  olb.reset_stats();
  EXPECT_EQ(olb.stats().lookups, 0u);
  EXPECT_EQ(olb.stats().misses, 0u);
  EXPECT_EQ(olb.stats().local_shortcuts, 0u);
}

}  // namespace
}  // namespace xbgas
