// Serving failover integration suite: scripted PE kills mid-traffic drive
// the full agree -> shrink -> restore -> rebalance -> replay/failfast
// sequence, with request accounting asserted exact on every survivor.
//
// Kill placement note: every remote serving op issues at least two
// RMA-site triggers (the hot-counter AMO plus the data transfer), so a
// scripted request sequence gives exact per-rank issue counts and the kill
// lands on a chosen op of a chosen batch. Reads of a dead PE's memory do
// not throw (the simulated memory outlives the PE) — deaths surface at the
// next batch barrier, which is exactly what the suspect log exists for.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "san/config.hpp"
#include "serving/client.hpp"
#include "serving/config.hpp"
#include "serving/counters.hpp"
#include "serving/store.hpp"
#include "benchlib/zipf.hpp"
#include "trace/collect.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig machine_config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  return c;
}

ServingConfig serving_config(int checkpoint_every,
                             InflightPolicy policy = InflightPolicy::kReplay) {
  ServingConfig s;
  s.n_keys = 64;
  s.hot_stripes = 8;
  s.checkpoint_every = checkpoint_every;
  s.policy = policy;
  return s;
}

ServingOutcome do_put(ServingClient& client, std::size_t key,
                      std::uint64_t value) {
  ServingRequest req;
  req.kind = ServingRequest::Kind::kPut;
  req.key = key;
  req.value = value;
  return client.execute(req);
}

ServingOutcome do_get(ServingClient& client, std::size_t key) {
  ServingRequest req;
  req.kind = ServingRequest::Kind::kGet;
  req.key = key;
  return client.execute(req);
}

// One PE dies mid-get; survivors fail over once and keep serving, including
// the dead rank's keys (re-homed from the replica's write-through copy) and
// the dead client's own completed writes.
TEST(ServingFailoverTest, KillMidTrafficFailsOverAndKeepsServing) {
  constexpr int kPes = 6;
  constexpr int kVictim = 2;
  FaultConfig fault;
  // Batch 1 put = issues 1-3 (hot AMO, primary store, replica store);
  // batch 2 get = issues 4-5. Die on the get's data load.
  fault.kills.push_back(KillSpec{kVictim, KillSite::kRma, 5});
  serving_counters_reset();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, -1);
  std::vector<ServingCounters> ledger(kPes);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const auto me = static_cast<std::size_t>(pe.rank());
    // checkpoint_every = 1: the batch-1 puts become durable at the first
    // end_batch, so recovery needs no replay here.
    KvStore store(serving_config(/*checkpoint_every=*/1));
    ServingClient client(store, serving_config(1));
    bool good = true;
    // Batch 1: every PE puts its neighbour's key (primary == key, remote).
    const auto own_key = static_cast<std::size_t>((pe.rank() + 1) % kPes);
    good = good && do_put(client, own_key, 0x100u + me).served;
    client.end_batch();
    // Batch 2: read it back; the victim dies inside this get.
    const ServingOutcome g = do_get(client, own_key);
    good = good && g.served;
    const bool failed_over = client.end_batch();  // survivors recover here
    good = good && failed_over;
    // Batch 3: the dead rank's key (written by PE 1) and the dead client's
    // own completed write (key 3 = victim+1) must both still serve.
    const ServingOutcome dead_key = do_get(client, kVictim);
    good = good && dead_key.served &&
           dead_key.value == (KvStore::tag(kVictim) | 0x101u);
    const ServingOutcome victims_write = do_get(client, kVictim + 1);
    good = good && victims_write.served &&
           victims_write.value == (KvStore::tag(kVictim + 1) | 0x102u);
    client.end_batch();
    good = good && client.counters().failovers == 1 &&
           client.view().n() == kPes - 1 && client.view().epoch >= 1 &&
           !client.view().alive(kVictim) && client.team() != nullptr &&
           client.counters().books_balance();
    ledger[me] = client.counters();
    ok[me] = good ? 1 : 0;
    client.finish();
    // No xbrtime_close: the world barrier is poisoned after a death;
    // survivors leave the heap to the leak report like the chaos benches.
  });
  EXPECT_EQ(machine.n_alive(), kPes - 1);
  EXPECT_EQ(machine.failed_ranks(), std::vector<int>{kVictim});
  for (int r = 0; r < kPes; ++r) {
    if (r == kVictim) continue;
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
    const ServingCounters& c = ledger[static_cast<std::size_t>(r)];
    EXPECT_EQ(c.requests, 4u) << "world rank " << r;
    EXPECT_EQ(c.served, 4u) << "world rank " << r;
    EXPECT_EQ(c.failed, 0u) << "world rank " << r;
  }
  const ServingCounters total = serving_counters_snapshot();
  EXPECT_TRUE(total.books_balance());
  EXPECT_EQ(total.requests, 4u * (kPes - 1));
  EXPECT_EQ(total.failovers, static_cast<std::uint64_t>(kPes - 1));
  EXPECT_GT(total.rebalanced_keys, 0u);
  const CounterRegistry counters = collect_counters(machine);
  EXPECT_GE(counters.get("recovery.shrinks").value(), 1u);
}

// Primary AND replica of key 2 die with a served-but-uncheckpointed put in
// the suspect window: under kReplay the write is re-established on the new
// owners and stays acknowledged.
TEST(ServingFailoverTest, AdjacentPairKillReplaysLostWrites) {
  constexpr int kPes = 6;
  FaultConfig fault;
  // Both victims die on the hot-AMO of their batch-2 get (issue 4).
  fault.kills.push_back(KillSpec{2, KillSite::kRma, 4});
  fault.kills.push_back(KillSpec{3, KillSite::kRma, 4});
  serving_counters_reset();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, -1);
  std::vector<ServingCounters> ledger(kPes);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const auto me = static_cast<std::size_t>(pe.rank());
    // checkpoint_every = 100: nothing retires the suspect log before the
    // failover, so PE 0's put of key 2 is exactly the lost-write case
    // (old primary 2 and old replica 3 both dead).
    KvStore store(serving_config(/*checkpoint_every=*/100));
    ServingClient client(store, serving_config(100));
    bool good = true;
    const auto key = static_cast<std::size_t>((pe.rank() + 2) % kPes);
    good = good && do_put(client, key, 0x200u + me).served;
    client.end_batch();
    good = good && do_get(client, key).served;
    good = good && client.end_batch();
    const ServingOutcome replayed_key = do_get(client, 2);
    good = good && replayed_key.served &&
           replayed_key.value == (KvStore::tag(2) | 0x200u);
    client.end_batch();
    good = good && client.counters().books_balance() &&
           client.counters().failovers == 1 && client.view().n() == kPes - 2;
    ledger[me] = client.counters();
    ok[me] = good ? 1 : 0;
    client.finish();
  });
  EXPECT_EQ(machine.n_alive(), kPes - 2);
  for (const int r : {0, 1, 4, 5}) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
    const ServingCounters& c = ledger[static_cast<std::size_t>(r)];
    EXPECT_EQ(c.served, 3u) << "world rank " << r;
    EXPECT_EQ(c.failed, 0u) << "world rank " << r;
    EXPECT_EQ(c.failed_fast, 0u) << "world rank " << r;
    // Only PE 0's put had both owners die.
    EXPECT_EQ(c.replayed, r == 0 ? 1u : 0u) << "world rank " << r;
  }
}

// Same double kill under kFailFast: the acknowledgment is withdrawn, the
// request is re-accounted failed, and the table really does not have the
// write (the re-homed value is the pre-put checkpoint) — honest loss, never
// a silent one.
TEST(ServingFailoverTest, AdjacentPairKillFailsFastByPolicy) {
  constexpr int kPes = 6;
  FaultConfig fault;
  fault.kills.push_back(KillSpec{2, KillSite::kRma, 4});
  fault.kills.push_back(KillSpec{3, KillSite::kRma, 4});
  serving_counters_reset();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, -1);
  std::vector<ServingCounters> ledger(kPes);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const auto me = static_cast<std::size_t>(pe.rank());
    KvStore store(serving_config(100, InflightPolicy::kFailFast));
    ServingClient client(store, serving_config(100, InflightPolicy::kFailFast));
    bool good = true;
    const auto key = static_cast<std::size_t>((pe.rank() + 2) % kPes);
    good = good && do_put(client, key, 0x200u + me).served;
    client.end_batch();
    good = good && do_get(client, key).served;
    good = good && client.end_batch();
    // The lost put was withdrawn: key 2 re-homed from the baseline
    // checkpoint, i.e. the bare tag with a zero payload.
    const ServingOutcome lost = do_get(client, 2);
    good = good && lost.served && lost.value == KvStore::tag(2);
    client.end_batch();
    good = good && client.counters().books_balance();
    ledger[me] = client.counters();
    ok[me] = good ? 1 : 0;
    client.finish();
  });
  EXPECT_EQ(machine.n_alive(), kPes - 2);
  for (const int r : {0, 1, 4, 5}) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
    const ServingCounters& c = ledger[static_cast<std::size_t>(r)];
    EXPECT_EQ(c.requests, 3u) << "world rank " << r;
    EXPECT_EQ(c.replayed, 0u) << "world rank " << r;
    if (r == 0) {
      EXPECT_EQ(c.failed_fast, 1u);
      EXPECT_EQ(c.served, 2u);
      EXPECT_EQ(c.failed, 1u);
    } else {
      EXPECT_EQ(c.failed_fast, 0u) << "world rank " << r;
      EXPECT_EQ(c.served, 3u) << "world rank " << r;
    }
  }
  const ServingCounters total = serving_counters_snapshot();
  EXPECT_TRUE(total.books_balance());
  EXPECT_EQ(total.failed_fast, 1u);
}

// Same seed => identical accounting, down to every pipeline counter, across
// two full chaos runs with seeded Zipfian traffic and mid-traffic kills.
TEST(ServingFailoverTest, SeededChaosRunIsDeterministic) {
  constexpr int kPes = 8;
  constexpr int kBatches = 6;
  constexpr int kOpsPerBatch = 12;
  const auto run_once = [&]() {
    FaultConfig fault;
    fault.seed = 99;
    fault.kills.push_back(KillSpec{1, KillSite::kRma, 30});
    fault.kills.push_back(KillSpec{4, KillSite::kRma, 45});
    serving_counters_reset();
    Machine machine(machine_config(kPes, fault));
    ServingConfig scfg = serving_config(/*checkpoint_every=*/2);
    scfg.n_keys = 256;
    machine.run([&](PeContext& pe) {
      xbrtime_init();
      KvStore store(scfg);
      ServingClient client(store, scfg);
      ServingTraffic traffic(/*seed=*/7, pe.rank(), scfg.n_keys,
                             ServingMix{});
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kOpsPerBatch; ++i) client.execute(traffic.next());
        client.end_batch();
      }
      client.finish();
    });
    EXPECT_EQ(machine.n_alive(), kPes - 2);
    return serving_counters_snapshot();
  };
  const ServingCounters a = run_once();
  const ServingCounters b = run_once();
  EXPECT_TRUE(a.books_balance());
  EXPECT_GE(a.failovers, 1u);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.incrs, b.incrs);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.requests_retried, b.requests_retried);
  EXPECT_EQ(a.attempt_timeouts, b.attempt_timeouts);
  EXPECT_EQ(a.hedges, b.hedges);
  EXPECT_EQ(a.redirected, b.redirected);
  EXPECT_EQ(a.replica_skips, b.replica_skips);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.failed_fast, b.failed_fast);
  EXPECT_EQ(a.rebalanced_keys, b.rebalanced_keys);
  EXPECT_EQ(a.hot_folds, b.hot_folds);
}

// Hedged nbi gets straddling a failover: every remote transfer is delayed
// past the attempt budget so each get arms its tail hedge (two
// request-tracked reads in flight for the same key), and the victim dies
// inside one of those hedged reads. The books must balance on every
// survivor — the in-flight handle cannot double-serve, leak, or lose its
// request — and the dead rank's keys must still serve hedged after the
// recovery. This is the test the nbi switch in ServingClient::attempt
// points at.
TEST(ServingFailoverTest, HedgedNbiGetsBalanceAcrossFailover) {
  constexpr int kPes = 6;
  constexpr int kVictim = 2;
  FaultConfig fault;
  fault.seed = 11;
  fault.rma_delay_prob = 1.0;  // every remote transfer is delayed...
  fault.amo_delay_prob = 1.0;
  fault.delay_cycles = 50000;  // ...far past the attempt budget
  // Batch 1 put = issues 1-3; batch 2 get = issues 4-5. The victim dies on
  // the get's data load — the request-tracked read itself.
  fault.kills.push_back(KillSpec{kVictim, KillSite::kRma, 5});
  serving_counters_reset();
  reset_rma_nbi_counters();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, -1);
  std::vector<ServingCounters> ledger(kPes);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const auto me = static_cast<std::size_t>(pe.rank());
    ServingConfig scfg = serving_config(/*checkpoint_every=*/1);
    scfg.attempt_timeout_cycles = 4000;
    scfg.op_timeout_cycles = 4000000;
    KvStore store(scfg);
    ServingClient client(store, scfg);
    bool good = true;
    const auto own_key = static_cast<std::size_t>((pe.rank() + 1) % kPes);
    good = good && do_put(client, own_key, 0x400u + me).served;
    client.end_batch();
    // The hedged read-back; the victim dies inside this batch's loads.
    const ServingOutcome g = do_get(client, own_key);
    good = good && g.served && KvStore::tag_matches(own_key, g.value);
    const bool failed_over = client.end_batch();
    good = good && failed_over;
    // Post-recovery: the dead rank's key still serves (and still hedges —
    // the delay faults never stop), off the re-homed replica copy.
    const ServingOutcome dead_key = do_get(client, kVictim);
    good = good && dead_key.served &&
           dead_key.value == (KvStore::tag(kVictim) | 0x401u);
    client.end_batch();
    const ServingCounters& c = client.counters();
    // At least the batch-2 remote get must have hedged; a rank whose
    // post-failover primary is itself serves batch 3 locally (fast, no
    // hedge), so the floor is 1, not one-per-get.
    good = good && c.books_balance() && c.failovers == 1 && c.hedges >= 1 &&
           c.attempt_timeouts >= 1 && !client.view().alive(kVictim);
    ledger[me] = c;
    ok[me] = good ? 1 : 0;
    client.finish();
    // No xbrtime_close: the world barrier is poisoned after a death.
  });
  EXPECT_EQ(machine.n_alive(), kPes - 1);
  for (int r = 0; r < kPes; ++r) {
    if (r == kVictim) continue;
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
    const ServingCounters& c = ledger[static_cast<std::size_t>(r)];
    EXPECT_EQ(c.requests, 3u) << "world rank " << r;
    EXPECT_EQ(c.served, 3u) << "world rank " << r;
    EXPECT_EQ(c.failed, 0u) << "world rank " << r;
  }
  const ServingCounters total = serving_counters_snapshot();
  EXPECT_TRUE(total.books_balance());
  // The hedged gets really rode the explicit-handle path, and every read
  // that SURVIVED was retired by its xbr_wait_req — only reads cut short by
  // the death itself (the victim's fiber dies between issue and wait) may
  // remain unretired.
  const RmaNbiCounters nbi = rma_nbi_counters();
  EXPECT_GT(nbi.gets, 0u);
  EXPECT_LE(nbi.gets - nbi.waits, 2u)
      << "gets=" << nbi.gets << " waits=" << nbi.waits;
}

// The whole failover sequence — atomic data plane, checkpoint, restore,
// orphan re-shard, replay — stays violation-free under XbrSan full.
TEST(ServingFailoverTest, FailoverSequenceIsCleanUnderXbrSanFull) {
  constexpr int kPes = 6;
  constexpr int kVictim = 2;
  FaultConfig fault;
  fault.kills.push_back(KillSpec{kVictim, KillSite::kRma, 5});
  serving_counters_reset();
  MachineConfig mc = machine_config(kPes, fault);
  mc.san.mode = SanMode::kFull;
  Machine machine(mc);
  std::vector<int> ok(kPes, -1);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    const auto me = static_cast<std::size_t>(pe.rank());
    KvStore store(serving_config(/*checkpoint_every=*/1));
    ServingClient client(store, serving_config(1));
    bool good = true;
    const auto own_key = static_cast<std::size_t>((pe.rank() + 1) % kPes);
    good = good && do_put(client, own_key, 0x300u + me).served;
    client.end_batch();
    good = good && do_get(client, own_key).served;
    good = good && client.end_batch();
    const ServingOutcome g = do_get(client, kVictim);
    good = good && g.served && g.value == (KvStore::tag(kVictim) | 0x301u);
    client.end_batch();
    ok[me] = (good && client.counters().books_balance()) ? 1 : 0;
    client.finish();
  });
  for (int r = 0; r < kPes; ++r) {
    if (r == kVictim) continue;
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "world rank " << r;
  }
  EXPECT_EQ(machine.sanitizer().counters().violations, 0u);
}

}  // namespace
}  // namespace xbgas
