// Serving layer unit tests: config validation, shard-view routing math,
// KvStore data plane, and the request pipeline's retry/hedge accounting
// under injected transport faults (no PE deaths here — failover is
// serving_failover_test.cpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serving/client.hpp"
#include "serving/config.hpp"
#include "serving/counters.hpp"
#include "serving/store.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace xbgas {
namespace {

MachineConfig machine_config(int n_pes, const FaultConfig& fault = {}) {
  MachineConfig c;
  c.n_pes = n_pes;
  c.layout =
      MemoryLayout{.private_bytes = 64 * 1024, .shared_bytes = 1024 * 1024};
  c.fault = fault;
  return c;
}

ServingConfig small_serving() {
  ServingConfig s;
  s.n_keys = 64;
  s.hot_stripes = 8;
  return s;
}

// -- Config validation --

TEST(ServingConfigTest, DefaultsValidate) {
  EXPECT_NO_THROW(validate_serving_config(ServingConfig{}));
}

TEST(ServingConfigTest, ZeroKeysRejected) {
  ServingConfig s;
  s.n_keys = 0;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, TagBreakingKeyCountRejected) {
  ServingConfig s;
  s.n_keys = (std::size_t{1} << 24) + 1;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, ZeroStripesRejected) {
  ServingConfig s;
  s.hot_stripes = 0;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, AttemptBudgetLargerThanDeadlineRejected) {
  ServingConfig s;
  s.op_timeout_cycles = 100;
  s.attempt_timeout_cycles = 200;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, ZeroAttemptBudgetRejected) {
  ServingConfig s;
  s.attempt_timeout_cycles = 0;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, NegativeRetriesRejected) {
  ServingConfig s;
  s.max_request_retries = -1;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, ZeroBackoffWithRetriesRejected) {
  ServingConfig s;
  s.retry_backoff_cycles = 0;
  EXPECT_THROW(validate_serving_config(s), ServingConfigError);
}

TEST(ServingConfigTest, PolicyParses) {
  EXPECT_EQ(parse_inflight_policy("replay"), InflightPolicy::kReplay);
  EXPECT_EQ(parse_inflight_policy("failfast"), InflightPolicy::kFailFast);
  EXPECT_THROW(parse_inflight_policy("drop"), ServingConfigError);
}

// -- ShardView routing --

TEST(ServingViewTest, WorldViewRoutesRoundRobin) {
  const ShardView v = world_shard_view(4);
  EXPECT_EQ(v.n(), 4);
  EXPECT_EQ(v.epoch, 0u);
  EXPECT_EQ(v.primary(0), 0);
  EXPECT_EQ(v.primary(5), 1);
  EXPECT_EQ(v.replica(5), 2);
  EXPECT_EQ(v.replica(3), 0);  // wraps
  EXPECT_TRUE(v.alive(3));
  EXPECT_FALSE(v.alive(4));
}

TEST(ServingViewTest, ShrunkenRosterReHomesKeys) {
  ShardView v;
  v.roster = {0, 2, 5};  // survivors after ranks 1,3,4 died
  v.epoch = 3;
  EXPECT_EQ(v.primary(0), 0);
  EXPECT_EQ(v.primary(1), 2);
  EXPECT_EQ(v.primary(2), 5);
  EXPECT_EQ(v.replica(2), 0);
  EXPECT_FALSE(v.alive(1));
  EXPECT_TRUE(v.alive(5));
}

TEST(ServingViewTest, TagHelpersRoundTrip) {
  EXPECT_EQ(KvStore::tag(7), std::uint64_t{7} << 24);
  EXPECT_TRUE(KvStore::tag_matches(7, KvStore::tag(7) | 0x123));
  EXPECT_FALSE(KvStore::tag_matches(8, KvStore::tag(7)));
}

// -- KvStore data plane --

TEST(ServingStoreTest, CrossPeRoundTrip) {
  constexpr int kPes = 4;
  Machine machine(machine_config(kPes));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    {
      KvStore store(small_serving());
      const int peer = (pe.rank() + 1) % kPes;
      const std::size_t key = static_cast<std::size_t>(pe.rank());
      const std::uint64_t v = KvStore::tag(key) | 0xABCu;
      store.store_value(key, v, peer);
      xbrtime_barrier();
      // Read back the slot we wrote on our neighbour.
      const std::uint64_t got = store.load(key, peer);
      bool good = got == v;
      // Atomic add returns the pre-add value.
      const std::uint64_t pre = store.add_value(key, 5, peer);
      good = good && pre == v && store.load(key, peer) == v + 5;
      // Hot-stripe bumps land on the addressed PE.
      store.bump_hot(key, peer);
      xbrtime_barrier();
      good = good && store.hot_sum() == 1u;
      ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
      xbrtime_barrier();
      store.release();
    }
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
}

TEST(ServingStoreTest, InitialValuesAreTagged) {
  Machine machine(machine_config(2));
  std::vector<int> ok(2, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    {
      KvStore store(small_serving());
      bool good = true;
      for (std::size_t k = 0; k < store.n_keys(); ++k) {
        good = good && store.local_value(k) == KvStore::tag(k);
      }
      ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
      xbrtime_barrier();
      store.release();
    }
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
}

// -- Request pipeline (fault-free) --

TEST(ServingClientTest, FaultFreeTrafficAllServedExactBooks) {
  constexpr int kPes = 4;
  constexpr int kOps = 32;
  serving_counters_reset();
  Machine machine(machine_config(kPes));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    KvStore store(small_serving());
    ServingClient client(store, small_serving());
    bool good = true;
    for (int i = 0; i < kOps; ++i) {
      const auto key = static_cast<std::size_t>(i % 64);
      ServingRequest req;
      if (i % 3 == 0) {
        req.kind = ServingRequest::Kind::kPut;
        req.key = key;
        req.value = static_cast<std::uint64_t>(i);
      } else if (i % 3 == 1) {
        req.kind = ServingRequest::Kind::kIncr;
        req.key = key;
        req.value = 2;
      } else {
        req.kind = ServingRequest::Kind::kGet;
        req.key = key;
      }
      const ServingOutcome out = client.execute(req);
      good = good && out.served && out.attempts == 1 && !out.redirected;
      if (req.kind == ServingRequest::Kind::kGet) {
        good = good && KvStore::tag_matches(key, out.value);
      }
    }
    const bool fo = client.end_batch();
    good = good && !fo;
    const ServingCounters& c = client.counters();
    good = good && c.books_balance() && c.requests == kOps &&
           c.served == kOps && c.failed == 0 && c.retries == 0 &&
           c.hedges == 0 && c.attempt_timeouts == 0 && c.failovers == 0;
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    client.finish();
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
  const ServingCounters total = serving_counters_snapshot();
  EXPECT_TRUE(total.books_balance());
  EXPECT_EQ(total.requests, static_cast<std::uint64_t>(kPes) * kOps);
  EXPECT_EQ(total.served, total.requests);
}

TEST(ServingClientTest, PutThenGetReturnsPayloadFromAnyClient) {
  constexpr int kPes = 4;
  serving_counters_reset();
  Machine machine(machine_config(kPes));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    KvStore store(small_serving());
    ServingClient client(store, small_serving());
    // Every PE puts its own key, then everyone reads every key.
    ServingRequest put;
    put.kind = ServingRequest::Kind::kPut;
    put.key = static_cast<std::size_t>(pe.rank());
    put.value = 0x100u + static_cast<std::uint64_t>(pe.rank());
    bool good = client.execute(put).served;
    client.end_batch();
    for (int r = 0; r < kPes; ++r) {
      ServingRequest get;
      get.kind = ServingRequest::Kind::kGet;
      get.key = static_cast<std::size_t>(r);
      const ServingOutcome out = client.execute(get);
      good = good && out.served &&
             out.value == (KvStore::tag(get.key) |
                           (0x100u + static_cast<std::uint64_t>(r)));
    }
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    client.finish();
    // A death-free region may close cleanly.
    client.end_batch();
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
}

// -- Retry and hedge accounting under injected transport faults --

TEST(ServingClientTest, DropsExhaustMachineRetriesAndDriveServingRetries) {
  constexpr int kPes = 2;
  FaultConfig fault;
  fault.seed = 7;
  fault.rma_drop_prob = 1.0;  // every remote transfer attempt drops
  fault.amo_drop_prob = 1.0;  // every remote RMW drops
  fault.max_rma_retries = 1;
  serving_counters_reset();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    ServingConfig scfg = small_serving();
    scfg.max_request_retries = 2;
    scfg.replicate = true;
    KvStore store(scfg);
    ServingClient client(store, scfg);
    // Key owned by the *other* rank: every attempt takes the remote path
    // and deterministically fails; key owned by self short-circuits
    // locally and always succeeds.
    const auto remote_key =
        static_cast<std::size_t>((pe.rank() + 1) % kPes);
    const auto local_key = static_cast<std::size_t>(pe.rank());
    ServingRequest remote_put;
    remote_put.kind = ServingRequest::Kind::kPut;
    remote_put.key = remote_key;
    remote_put.value = 1;
    const ServingOutcome r1 = client.execute(remote_put);
    ServingRequest local_get;
    local_get.kind = ServingRequest::Kind::kGet;
    local_get.key = local_key;
    const ServingOutcome r2 = client.execute(local_get);
    const ServingCounters& c = client.counters();
    // With 2 PEs the replica of a remote key is the requester itself, so
    // the failed request burned 1 + max_request_retries attempts; the
    // hedge fallback cannot apply to writes.
    const bool good = !r1.served && r2.served && c.books_balance() &&
                      c.requests == 2 && c.served == 1 && c.failed == 1 &&
                      c.retries == 2 && c.requests_retried == 1;
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    client.finish();
    client.end_batch();
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
  const ServingCounters total = serving_counters_snapshot();
  EXPECT_TRUE(total.books_balance());
  EXPECT_EQ(total.failed, 2u);
}

TEST(ServingClientTest, SlowAttemptsArmHedgesAndCountTimeouts) {
  constexpr int kPes = 4;
  FaultConfig fault;
  fault.seed = 11;
  fault.rma_delay_prob = 1.0;  // every remote transfer is delayed...
  fault.amo_delay_prob = 1.0;
  fault.delay_cycles = 50000;  // ...far past the attempt budget
  serving_counters_reset();
  Machine machine(machine_config(kPes, fault));
  std::vector<int> ok(kPes, 0);
  machine.run([&](PeContext& pe) {
    xbrtime_init();
    ServingConfig scfg = small_serving();
    scfg.attempt_timeout_cycles = 4000;
    scfg.op_timeout_cycles = 4000000;
    KvStore store(scfg);
    ServingClient client(store, scfg);
    // A get for a remote-owned key: the primary read comes back valid but
    // slow, the hedge to the replica is also slow, so the late primary
    // value is served — request accounted served, one hedge, no redirect.
    const auto key = static_cast<std::size_t>((pe.rank() + 1) % kPes);
    ServingRequest get;
    get.kind = ServingRequest::Kind::kGet;
    get.key = key;
    const ServingOutcome out = client.execute(get);
    const ServingCounters& c = client.counters();
    const bool good = out.served && !out.redirected &&
                      KvStore::tag_matches(key, out.value) &&
                      c.books_balance() && c.hedges == 1 &&
                      c.attempt_timeouts >= 2 && c.retries == 0;
    ok[static_cast<std::size_t>(pe.rank())] = good ? 1 : 0;
    client.finish();
    client.end_batch();
    xbrtime_close();
  });
  for (const int r : ok) EXPECT_EQ(r, 1);
}

TEST(ServingCountersTest, AddAndBalanceHelpers) {
  ServingCounters a;
  a.requests = 10;
  a.served = 8;
  a.failed = 2;
  ServingCounters b;
  b.requests = 5;
  b.served = 5;
  b.retries = 3;
  a.add(b);
  EXPECT_EQ(a.requests, 15u);
  EXPECT_EQ(a.served, 13u);
  EXPECT_EQ(a.failed, 2u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_TRUE(a.books_balance());
  a.failed = 1;
  EXPECT_FALSE(a.books_balance());
}

}  // namespace
}  // namespace xbgas
