file(REMOVE_RECURSE
  "CMakeFiles/benchlib_tests.dir/options_test.cpp.o"
  "CMakeFiles/benchlib_tests.dir/options_test.cpp.o.d"
  "CMakeFiles/benchlib_tests.dir/table_test.cpp.o"
  "CMakeFiles/benchlib_tests.dir/table_test.cpp.o.d"
  "benchlib_tests"
  "benchlib_tests.pdb"
  "benchlib_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchlib_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
