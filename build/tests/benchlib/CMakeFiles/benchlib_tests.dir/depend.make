# Empty dependencies file for benchlib_tests.
# This may be replaced when dependencies are built.
