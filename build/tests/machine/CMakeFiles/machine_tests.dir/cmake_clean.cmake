file(REMOVE_RECURSE
  "CMakeFiles/machine_tests.dir/barrier_test.cpp.o"
  "CMakeFiles/machine_tests.dir/barrier_test.cpp.o.d"
  "CMakeFiles/machine_tests.dir/machine_test.cpp.o"
  "CMakeFiles/machine_tests.dir/machine_test.cpp.o.d"
  "CMakeFiles/machine_tests.dir/port_test.cpp.o"
  "CMakeFiles/machine_tests.dir/port_test.cpp.o.d"
  "machine_tests"
  "machine_tests.pdb"
  "machine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
