# CMake generated Testfile for 
# Source directory: /root/repo/tests/olb
# Build directory: /root/repo/build/tests/olb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/olb/olb_tests[1]_include.cmake")
