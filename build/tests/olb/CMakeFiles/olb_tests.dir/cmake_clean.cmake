file(REMOVE_RECURSE
  "CMakeFiles/olb_tests.dir/olb_test.cpp.o"
  "CMakeFiles/olb_tests.dir/olb_test.cpp.o.d"
  "olb_tests"
  "olb_tests.pdb"
  "olb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
