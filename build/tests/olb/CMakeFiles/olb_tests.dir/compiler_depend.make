# Empty compiler generated dependencies file for olb_tests.
# This may be replaced when dependencies are built.
