file(REMOVE_RECURSE
  "CMakeFiles/collectives_tests.dir/broadcast_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/broadcast_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/composed_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/composed_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/gather_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/gather_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/hierarchical_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/hierarchical_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/param_sweep_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/param_sweep_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/reduce_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/reduce_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/ring_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/ring_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/scatter_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/scatter_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/schedule_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/schedule_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/team_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/team_test.cpp.o.d"
  "CMakeFiles/collectives_tests.dir/vrank_test.cpp.o"
  "CMakeFiles/collectives_tests.dir/vrank_test.cpp.o.d"
  "collectives_tests"
  "collectives_tests.pdb"
  "collectives_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
