
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collectives/broadcast_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/broadcast_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/broadcast_test.cpp.o.d"
  "/root/repo/tests/collectives/composed_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/composed_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/composed_test.cpp.o.d"
  "/root/repo/tests/collectives/gather_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/gather_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/gather_test.cpp.o.d"
  "/root/repo/tests/collectives/hierarchical_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/hierarchical_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/hierarchical_test.cpp.o.d"
  "/root/repo/tests/collectives/param_sweep_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/param_sweep_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/param_sweep_test.cpp.o.d"
  "/root/repo/tests/collectives/reduce_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/reduce_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/reduce_test.cpp.o.d"
  "/root/repo/tests/collectives/ring_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/ring_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/ring_test.cpp.o.d"
  "/root/repo/tests/collectives/scatter_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/scatter_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/scatter_test.cpp.o.d"
  "/root/repo/tests/collectives/schedule_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/schedule_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/schedule_test.cpp.o.d"
  "/root/repo/tests/collectives/team_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/team_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/team_test.cpp.o.d"
  "/root/repo/tests/collectives/vrank_test.cpp" "tests/collectives/CMakeFiles/collectives_tests.dir/vrank_test.cpp.o" "gcc" "tests/collectives/CMakeFiles/collectives_tests.dir/vrank_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/xbgas_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/xbgas_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/xbrtime/CMakeFiles/xbgas_xbrtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/xbgas_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/xbgas_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xbgas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbgas_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/olb/CMakeFiles/xbgas_olb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xbgas_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbgas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
