# Empty compiler generated dependencies file for xbrtime_tests.
# This may be replaced when dependencies are built.
