file(REMOVE_RECURSE
  "CMakeFiles/xbrtime_tests.dir/rma_test.cpp.o"
  "CMakeFiles/xbrtime_tests.dir/rma_test.cpp.o.d"
  "CMakeFiles/xbrtime_tests.dir/runtime_test.cpp.o"
  "CMakeFiles/xbrtime_tests.dir/runtime_test.cpp.o.d"
  "CMakeFiles/xbrtime_tests.dir/types_test.cpp.o"
  "CMakeFiles/xbrtime_tests.dir/types_test.cpp.o.d"
  "CMakeFiles/xbrtime_tests.dir/validation_test.cpp.o"
  "CMakeFiles/xbrtime_tests.dir/validation_test.cpp.o.d"
  "xbrtime_tests"
  "xbrtime_tests.pdb"
  "xbrtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbrtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
