# CMake generated Testfile for 
# Source directory: /root/repo/tests/cache
# Build directory: /root/repo/build/tests/cache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cache/cache_tests[1]_include.cmake")
