
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/xbgas_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/xbgas_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/xbrtime/CMakeFiles/xbgas_xbrtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/xbgas_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/xbgas_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xbgas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbgas_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/olb/CMakeFiles/xbgas_olb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xbgas_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbgas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
