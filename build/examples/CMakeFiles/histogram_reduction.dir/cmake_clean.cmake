file(REMOVE_RECURSE
  "CMakeFiles/histogram_reduction.dir/histogram_reduction.cpp.o"
  "CMakeFiles/histogram_reduction.dir/histogram_reduction.cpp.o.d"
  "histogram_reduction"
  "histogram_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
