# Empty compiler generated dependencies file for histogram_reduction.
# This may be replaced when dependencies are built.
