file(REMOVE_RECURSE
  "CMakeFiles/xbgas_benchlib.dir/gups.cpp.o"
  "CMakeFiles/xbgas_benchlib.dir/gups.cpp.o.d"
  "CMakeFiles/xbgas_benchlib.dir/nasis.cpp.o"
  "CMakeFiles/xbgas_benchlib.dir/nasis.cpp.o.d"
  "CMakeFiles/xbgas_benchlib.dir/options.cpp.o"
  "CMakeFiles/xbgas_benchlib.dir/options.cpp.o.d"
  "CMakeFiles/xbgas_benchlib.dir/stats_report.cpp.o"
  "CMakeFiles/xbgas_benchlib.dir/stats_report.cpp.o.d"
  "CMakeFiles/xbgas_benchlib.dir/table.cpp.o"
  "CMakeFiles/xbgas_benchlib.dir/table.cpp.o.d"
  "libxbgas_benchlib.a"
  "libxbgas_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
