
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/gups.cpp" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/gups.cpp.o" "gcc" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/gups.cpp.o.d"
  "/root/repo/src/benchlib/nasis.cpp" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/nasis.cpp.o" "gcc" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/nasis.cpp.o.d"
  "/root/repo/src/benchlib/options.cpp" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/options.cpp.o" "gcc" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/options.cpp.o.d"
  "/root/repo/src/benchlib/stats_report.cpp" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/stats_report.cpp.o" "gcc" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/stats_report.cpp.o.d"
  "/root/repo/src/benchlib/table.cpp" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/table.cpp.o" "gcc" "src/benchlib/CMakeFiles/xbgas_benchlib.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collectives/CMakeFiles/xbgas_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/xbrtime/CMakeFiles/xbgas_xbrtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/xbgas_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/xbgas_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xbgas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/xbgas_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/olb/CMakeFiles/xbgas_olb.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xbgas_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xbgas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
