# Empty dependencies file for xbgas_benchlib.
# This may be replaced when dependencies are built.
