file(REMOVE_RECURSE
  "libxbgas_benchlib.a"
)
