file(REMOVE_RECURSE
  "CMakeFiles/xbgas_machine.dir/barrier.cpp.o"
  "CMakeFiles/xbgas_machine.dir/barrier.cpp.o.d"
  "CMakeFiles/xbgas_machine.dir/machine.cpp.o"
  "CMakeFiles/xbgas_machine.dir/machine.cpp.o.d"
  "CMakeFiles/xbgas_machine.dir/port.cpp.o"
  "CMakeFiles/xbgas_machine.dir/port.cpp.o.d"
  "libxbgas_machine.a"
  "libxbgas_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
