file(REMOVE_RECURSE
  "libxbgas_machine.a"
)
