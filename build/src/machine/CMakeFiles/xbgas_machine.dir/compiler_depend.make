# Empty compiler generated dependencies file for xbgas_machine.
# This may be replaced when dependencies are built.
