file(REMOVE_RECURSE
  "CMakeFiles/xbgas_cache.dir/cache.cpp.o"
  "CMakeFiles/xbgas_cache.dir/cache.cpp.o.d"
  "CMakeFiles/xbgas_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/xbgas_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/xbgas_cache.dir/tlb.cpp.o"
  "CMakeFiles/xbgas_cache.dir/tlb.cpp.o.d"
  "libxbgas_cache.a"
  "libxbgas_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
