file(REMOVE_RECURSE
  "libxbgas_cache.a"
)
