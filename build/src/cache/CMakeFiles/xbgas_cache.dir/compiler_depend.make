# Empty compiler generated dependencies file for xbgas_cache.
# This may be replaced when dependencies are built.
