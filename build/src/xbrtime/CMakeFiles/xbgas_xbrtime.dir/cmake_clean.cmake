file(REMOVE_RECURSE
  "CMakeFiles/xbgas_xbrtime.dir/api_c.cpp.o"
  "CMakeFiles/xbgas_xbrtime.dir/api_c.cpp.o.d"
  "CMakeFiles/xbgas_xbrtime.dir/rma.cpp.o"
  "CMakeFiles/xbgas_xbrtime.dir/rma.cpp.o.d"
  "CMakeFiles/xbgas_xbrtime.dir/runtime.cpp.o"
  "CMakeFiles/xbgas_xbrtime.dir/runtime.cpp.o.d"
  "CMakeFiles/xbgas_xbrtime.dir/validation.cpp.o"
  "CMakeFiles/xbgas_xbrtime.dir/validation.cpp.o.d"
  "libxbgas_xbrtime.a"
  "libxbgas_xbrtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_xbrtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
