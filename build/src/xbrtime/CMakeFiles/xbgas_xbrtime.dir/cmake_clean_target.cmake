file(REMOVE_RECURSE
  "libxbgas_xbrtime.a"
)
