# Empty compiler generated dependencies file for xbgas_xbrtime.
# This may be replaced when dependencies are built.
