file(REMOVE_RECURSE
  "libxbgas_olb.a"
)
