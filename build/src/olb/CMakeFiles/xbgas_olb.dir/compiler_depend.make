# Empty compiler generated dependencies file for xbgas_olb.
# This may be replaced when dependencies are built.
