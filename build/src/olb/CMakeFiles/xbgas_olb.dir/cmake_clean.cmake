file(REMOVE_RECURSE
  "CMakeFiles/xbgas_olb.dir/olb.cpp.o"
  "CMakeFiles/xbgas_olb.dir/olb.cpp.o.d"
  "libxbgas_olb.a"
  "libxbgas_olb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_olb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
