file(REMOVE_RECURSE
  "libxbgas_isa.a"
)
