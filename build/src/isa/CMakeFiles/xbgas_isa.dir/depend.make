# Empty dependencies file for xbgas_isa.
# This may be replaced when dependencies are built.
