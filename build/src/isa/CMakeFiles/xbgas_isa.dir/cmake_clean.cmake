file(REMOVE_RECURSE
  "CMakeFiles/xbgas_isa.dir/assembler.cpp.o"
  "CMakeFiles/xbgas_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/xbgas_isa.dir/builder.cpp.o"
  "CMakeFiles/xbgas_isa.dir/builder.cpp.o.d"
  "CMakeFiles/xbgas_isa.dir/decoder.cpp.o"
  "CMakeFiles/xbgas_isa.dir/decoder.cpp.o.d"
  "CMakeFiles/xbgas_isa.dir/encoder.cpp.o"
  "CMakeFiles/xbgas_isa.dir/encoder.cpp.o.d"
  "CMakeFiles/xbgas_isa.dir/hart.cpp.o"
  "CMakeFiles/xbgas_isa.dir/hart.cpp.o.d"
  "CMakeFiles/xbgas_isa.dir/instruction.cpp.o"
  "CMakeFiles/xbgas_isa.dir/instruction.cpp.o.d"
  "libxbgas_isa.a"
  "libxbgas_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
