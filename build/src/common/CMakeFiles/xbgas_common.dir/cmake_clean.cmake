file(REMOVE_RECURSE
  "CMakeFiles/xbgas_common.dir/cli.cpp.o"
  "CMakeFiles/xbgas_common.dir/cli.cpp.o.d"
  "CMakeFiles/xbgas_common.dir/log.cpp.o"
  "CMakeFiles/xbgas_common.dir/log.cpp.o.d"
  "CMakeFiles/xbgas_common.dir/rng.cpp.o"
  "CMakeFiles/xbgas_common.dir/rng.cpp.o.d"
  "libxbgas_common.a"
  "libxbgas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
