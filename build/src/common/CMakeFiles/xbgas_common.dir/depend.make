# Empty dependencies file for xbgas_common.
# This may be replaced when dependencies are built.
