file(REMOVE_RECURSE
  "libxbgas_common.a"
)
