# Empty compiler generated dependencies file for xbgas_memory.
# This may be replaced when dependencies are built.
