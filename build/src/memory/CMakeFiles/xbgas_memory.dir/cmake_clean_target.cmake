file(REMOVE_RECURSE
  "libxbgas_memory.a"
)
