file(REMOVE_RECURSE
  "CMakeFiles/xbgas_memory.dir/arena.cpp.o"
  "CMakeFiles/xbgas_memory.dir/arena.cpp.o.d"
  "CMakeFiles/xbgas_memory.dir/freelist_allocator.cpp.o"
  "CMakeFiles/xbgas_memory.dir/freelist_allocator.cpp.o.d"
  "libxbgas_memory.a"
  "libxbgas_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
