file(REMOVE_RECURSE
  "libxbgas_collectives.a"
)
