file(REMOVE_RECURSE
  "CMakeFiles/xbgas_collectives.dir/api_c.cpp.o"
  "CMakeFiles/xbgas_collectives.dir/api_c.cpp.o.d"
  "CMakeFiles/xbgas_collectives.dir/detail.cpp.o"
  "CMakeFiles/xbgas_collectives.dir/detail.cpp.o.d"
  "CMakeFiles/xbgas_collectives.dir/schedule.cpp.o"
  "CMakeFiles/xbgas_collectives.dir/schedule.cpp.o.d"
  "CMakeFiles/xbgas_collectives.dir/team.cpp.o"
  "CMakeFiles/xbgas_collectives.dir/team.cpp.o.d"
  "libxbgas_collectives.a"
  "libxbgas_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
