# Empty compiler generated dependencies file for xbgas_collectives.
# This may be replaced when dependencies are built.
