# Empty dependencies file for xbgas_net.
# This may be replaced when dependencies are built.
