file(REMOVE_RECURSE
  "CMakeFiles/xbgas_net.dir/fabric.cpp.o"
  "CMakeFiles/xbgas_net.dir/fabric.cpp.o.d"
  "CMakeFiles/xbgas_net.dir/topology.cpp.o"
  "CMakeFiles/xbgas_net.dir/topology.cpp.o.d"
  "libxbgas_net.a"
  "libxbgas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xbgas_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
