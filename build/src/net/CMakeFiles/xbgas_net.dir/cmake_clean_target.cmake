file(REMOVE_RECURSE
  "libxbgas_net.a"
)
