# Empty compiler generated dependencies file for bench_ablation_tree_vs_linear.
# This may be replaced when dependencies are built.
