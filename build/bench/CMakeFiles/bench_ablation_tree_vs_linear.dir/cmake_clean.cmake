file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tree_vs_linear.dir/bench_ablation_tree_vs_linear.cpp.o"
  "CMakeFiles/bench_ablation_tree_vs_linear.dir/bench_ablation_tree_vs_linear.cpp.o.d"
  "bench_ablation_tree_vs_linear"
  "bench_ablation_tree_vs_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tree_vs_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
