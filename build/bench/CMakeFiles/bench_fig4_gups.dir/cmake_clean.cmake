file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_gups.dir/bench_fig4_gups.cpp.o"
  "CMakeFiles/bench_fig4_gups.dir/bench_fig4_gups.cpp.o.d"
  "bench_fig4_gups"
  "bench_fig4_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
