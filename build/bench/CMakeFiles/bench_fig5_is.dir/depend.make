# Empty dependencies file for bench_fig5_is.
# This may be replaced when dependencies are built.
