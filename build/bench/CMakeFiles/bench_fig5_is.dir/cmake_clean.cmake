file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_is.dir/bench_fig5_is.cpp.o"
  "CMakeFiles/bench_fig5_is.dir/bench_fig5_is.cpp.o.d"
  "bench_fig5_is"
  "bench_fig5_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
