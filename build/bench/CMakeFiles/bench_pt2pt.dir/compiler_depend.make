# Empty compiler generated dependencies file for bench_pt2pt.
# This may be replaced when dependencies are built.
