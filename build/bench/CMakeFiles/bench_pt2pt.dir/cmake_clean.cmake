file(REMOVE_RECURSE
  "CMakeFiles/bench_pt2pt.dir/bench_pt2pt.cpp.o"
  "CMakeFiles/bench_pt2pt.dir/bench_pt2pt.cpp.o.d"
  "bench_pt2pt"
  "bench_pt2pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pt2pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
