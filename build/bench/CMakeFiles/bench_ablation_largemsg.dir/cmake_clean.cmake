file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_largemsg.dir/bench_ablation_largemsg.cpp.o"
  "CMakeFiles/bench_ablation_largemsg.dir/bench_ablation_largemsg.cpp.o.d"
  "bench_ablation_largemsg"
  "bench_ablation_largemsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_largemsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
