# Empty compiler generated dependencies file for bench_ablation_largemsg.
# This may be replaced when dependencies are built.
