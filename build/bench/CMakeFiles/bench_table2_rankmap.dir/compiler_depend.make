# Empty compiler generated dependencies file for bench_table2_rankmap.
# This may be replaced when dependencies are built.
