file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rankmap.dir/bench_table2_rankmap.cpp.o"
  "CMakeFiles/bench_table2_rankmap.dir/bench_table2_rankmap.cpp.o.d"
  "bench_table2_rankmap"
  "bench_table2_rankmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rankmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
