#!/usr/bin/env bash
# Local verification gauntlet:
#   1. tier-1 verify (ROADMAP.md): configure + build + full test suite,
#      with -Wall -Wextra -Werror enforced (XBGAS_WERROR defaults ON)
#   2. the observability suite alone (ctest -R trace)
#   3. the disabled-path overhead microbenchmark guard
#   4. an end-to-end trace/counters smoke on bench_pt2pt
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== [1/4] tier-1 verify (configure + build + full ctest, -Werror on) =="
cmake -B "$BUILD" -S . -DXBGAS_WERROR=ON
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== [2/4] observability suite (ctest -R trace) =="
ctest --test-dir "$BUILD" -R trace --output-on-failure

echo "== [3/4] disabled-path overhead guard =="
"$BUILD"/tests/trace/trace_overhead_test

echo "== [4/4] trace + counters smoke (bench_pt2pt) =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$BUILD"/bench/bench_pt2pt --trace-out="$TMP/t.json" --counters=json \
    > "$TMP/out.txt"
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
trace = json.load(open(f"{tmp}/t.json"))
tracks = {e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"}
assert tracks, "trace has no event tracks"
out = open(f"{tmp}/out.txt").read()
counters = json.loads(out[out.index("{"):])
assert counters["olb.hits"] + counters["olb.misses"] == counters["net.messages"], \
    "OLB hit+miss must equal remote RMA message count"
print(f"smoke OK: {len(trace['traceEvents'])} trace events, "
      f"{len(tracks)} PE tracks, {counters['net.messages']} remote RMAs")
EOF

echo "== all checks passed =="
