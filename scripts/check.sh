#!/usr/bin/env bash
# Local verification gauntlet:
#   1. tier-1 verify (ROADMAP.md): configure + build + full test suite,
#      with -Wall -Wextra -Werror enforced (XBGAS_WERROR defaults ON)
#   2. fast pre-commit path: the unit label alone (ctest -L unit) — what
#      you run on every edit; stages 3+ are the full gauntlet
#   3. the observability suite alone (ctest -R trace)
#   4. the disabled-path overhead microbenchmark guard
#   5. an end-to-end trace/counters smoke on bench_pt2pt
#   6. a fault-injection smoke: deterministic placement + retry absorption
#   7. a collective-policy smoke: --coll-algo dispatch counters line up
#   8. hierarchy + tuner gauntlet (docs/COLLECTIVES.md): the k-nomial /
#      hierarchy / tuner test wall, a fresh OSU sweep with its gates
#      (tuned <= model, hier beats flat at large messages), a tune-table
#      round-trip through --coll-tune-table, and the committed
#      BENCH_osu.json re-gated including the 256-PE acceptance bar
#   9. XbrSan smoke (docs/SANITIZER.md): positive — a full benchmark run
#      under --xbrsan full reports zero violations; negative — the
#      deliberately-buggy examples/san_violation is caught and says so
#   10. survivor-recovery chaos smoke (docs/RESILIENCE.md): bench_chaos under
#      a scripted two-kill plan and a seeded-random soak — every run must
#      shrink, restore, and verify its collectives after the deaths
#  11. serving chaos smoke (docs/SERVING.md): bench_serving seeded soak —
#      every seeded run must fail over and keep serving with balanced
#      request books (requests == served + failed on every survivor),
#      identical accounting on a same-seed replay, and post-failover
#      throughput >= 50% of pre-failover
#  12. partition-tolerance smoke (docs/RESILIENCE.md): the both-sides quorum
#      proof (64-PE scripted split: majority shrinks + verifies a golden
#      allreduce, minority unwinds with PartitionedError), the unreachable-
#      escalation and fail-fast suites, a scripted + seeded bench_partition
#      soak with bit-identical replays, and the committed
#      BENCH_partition.json re-gated
#  13. nbi + write-combining smoke (docs/COLLECTIVES.md): the explicit-
#      handle test wall (request RMA, write combiner, the new sanitizer
#      epochs, nbi conformance — every conformance case runs under
#      --xbrsan full internally) plus bench_gups, which exits nonzero
#      unless coalescing wins >= 2x bitwise-identically and the chunked-nbi
#      ring allreduce beats the blocking ring at 64 PEs
#  14. scaling smoke (docs/SCALING.md): the 256-PE integration suite, the
#      1024-PE slow smoke, and a bench_scaling run checking the modeled
#      barrier latency actually grows log-depth, not linearly
#  15. ASan+UBSan pass (-DXBGAS_SANITIZE=address) over the full test suite
#  16. ThreadSanitizer pass (-DXBGAS_SANITIZE=thread) over the concurrency-
#      heavy suites: machine (incl. the fiber scheduler), trace, fault, san,
#      nbi/write-combining, recovery, serving, scaling, partition/
#      unreachable, and the collectives conformance sweep (blocking and
#      nbi axes)
#
# Usage: scripts/check.sh [build-dir]   (default: build; the ASan and TSan
# stages use <build-dir>-asan and <build-dir>-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "== [1/16] tier-1 verify (configure + build + full ctest, -Werror on) =="
cmake -B "$BUILD" -S . -DXBGAS_WERROR=ON
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== [2/16] fast path: unit label only (ctest -L unit) =="
ctest --test-dir "$BUILD" -L unit --output-on-failure -j "$(nproc)"

echo "== [3/16] observability suite (ctest -R trace) =="
ctest --test-dir "$BUILD" -R trace --output-on-failure

echo "== [4/16] disabled-path overhead guard =="
"$BUILD"/tests/trace/trace_overhead_test

echo "== [5/16] trace + counters smoke (bench_pt2pt) =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$BUILD"/bench/bench_pt2pt --trace-out="$TMP/t.json" --counters=json \
    > "$TMP/out.txt"
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
trace = json.load(open(f"{tmp}/t.json"))
tracks = {e["tid"] for e in trace["traceEvents"] if e["ph"] != "M"}
assert tracks, "trace has no event tracks"
out = open(f"{tmp}/out.txt").read()
counters = json.loads(out[out.index("{"):])
assert counters["olb.hits"] + counters["olb.misses"] == counters["net.messages"], \
    "OLB hit+miss must equal remote RMA message count"
print(f"smoke OK: {len(trace['traceEvents'])} trace events, "
      f"{len(tracks)} PE tracks, {counters['net.messages']} remote RMAs")
EOF

echo "== [6/16] fault-injection smoke (bench_pt2pt, docs/RESILIENCE.md) =="
"$BUILD"/bench/bench_pt2pt --fault-rma-drop=0.01 --fault-seed=7 \
    --counters=json > "$TMP/fault1.txt"
"$BUILD"/bench/bench_pt2pt --fault-rma-drop=0.01 --fault-seed=7 \
    --counters=json > "$TMP/fault2.txt"
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
a = open(f"{tmp}/fault1.txt").read()
b = open(f"{tmp}/fault2.txt").read()
assert a == b, "identical fault seeds must reproduce identical runs"
counters = json.loads(a[a.index("{"):])
assert counters["fault.injected.rma_drop"] > 0, "no drops were injected"
assert counters["rma.retries"] > 0, "drops were injected but never retried"
assert counters["machine.pes_failed"] == 0, \
    "the retry path must absorb a 1% drop rate"
print(f"fault smoke OK: {counters['fault.injected.rma_drop']} drops "
      f"absorbed by {counters['rma.retries']} retries, deterministic replay")
EOF

echo "== [7/16] collective-policy smoke (docs/COLLECTIVES.md) =="
"$BUILD"/bench/bench_policy_crossover --pes 8 --sizes 16,4096 --reps 1 \
    --json "$TMP/cross.json" > /dev/null
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
data = json.load(open(f"{tmp}/cross.json"))
points = {p["nelems"]: p for p in data["pes"][0]["points"]}
assert points[16]["auto_algo"] == "tree", "auto must pick tree at 16 elems"
assert points[4096]["auto_algo"] == "ring", "auto must pick ring at 4096 elems"
for p in points.values():
    assert p["auto_cycles"] <= min(p["tree_cycles"], p["ring_cycles"]) * 1.01, \
        f"auto must track min(tree, ring) at {p['nelems']} elems"
print("policy smoke OK: auto flips tree->ring across the crossover and "
      "tracks the faster family")
EOF

echo "== [8/16] hierarchy + tuner gauntlet (docs/COLLECTIVES.md) =="
# The engine/tuner test wall: k-nomial schedules, the depth x radix x PE
# conformance axis (each case under XbrSan full internally), the tuner
# round-trip, and the three regression suites from this PR's bugfixes.
ctest --test-dir "$BUILD" -R '(Hierarch|Knomial|Tuner)' \
    --output-on-failure -j "$(nproc)"
# Fresh small sweep: build a tune table, gate the measurements, and verify
# the persisted table round-trips through --coll-tune-table.
"$BUILD"/bench/bench_osu_sweep --pes 16 --sizes 128,8192 \
    --json "$TMP/osu.json" --tune-table "$TMP/osu.table" > /dev/null
python3 - "$TMP/osu.json" <<'EOF'
import json, sys
for m in json.load(open(sys.argv[1]))["machines"]:
    big = max(r["bytes"] for r in m["results"] if r["kind"] == "broadcast")
    for r in m["results"]:
        assert r["tuned"] <= r["model"], \
            f"tuned dispatch lost to the model: {m['pes']} PEs {r}"
        if r["kind"] == "broadcast" and r["bytes"] == big:
            assert 0 < r["hier"] < r["flat_tree"], \
                f"hierarchy must beat the flat tree at {big}B: {r}"
print("osu sweep OK: tuned <= model everywhere, hier wins large broadcasts")
EOF
# bench_policy_crossover dispatches through the policy, so the loaded
# table is actually consulted (one counters JSON per machine; the last is
# the auto machine on the matching topology, where lookups must hit).
"$BUILD"/bench/bench_policy_crossover --pes 16 --topology cluster4x32 \
    --coll-tune-table "$TMP/osu.table" --counters=json > "$TMP/tuned.txt"
python3 - "$TMP/tuned.txt" <<'EOF'
import re, sys
out = open(sys.argv[1]).read()
entries = re.findall(r'"coll\.tuner\.entries": (\d+)', out)
hits = re.findall(r'"coll\.tuner\.hits": (\d+)', out)
assert entries and int(entries[-1]) > 0, "--coll-tune-table did not load"
assert hits and int(hits[-1]) > 0, "tune table was never hit at 16 PEs"
print(f"tune table round-trip OK: {entries[-1]} entries, {hits[-1]} hits")
EOF
# The committed run (BENCH_osu.json) must satisfy the same gates, including
# the 256-PE machine where the acceptance bar lives (>= 64 KiB broadcasts).
python3 - BENCH_osu.json <<'EOF'
import json, sys
machines = json.load(open(sys.argv[1]))["machines"]
assert max(m["pes"] for m in machines) >= 256, "committed run lacks 256 PEs"
for m in machines:
    for r in m["results"]:
        assert r["tuned"] <= r["model"], \
            f"committed tuned dispatch lost to the model: {m['pes']} PEs {r}"
        if r["kind"] == "broadcast" and r["bytes"] >= 65536:
            assert 0 < r["hier"] < r["flat_tree"], \
                f"committed hier must beat flat >=64KiB: {m['pes']} PEs {r}"
print("committed BENCH_osu.json OK")
EOF

echo "== [9/16] XbrSan smoke (docs/SANITIZER.md) =="
# Positive: a real workload under full checking finishes with 0 violations.
"$BUILD"/bench/bench_pt2pt --xbrsan=full --counters=json > "$TMP/san.txt"
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
out = open(f"{tmp}/san.txt").read()
counters = json.loads(out[out.index("{"):])
assert counters["san.enabled"] == 1, "--xbrsan full must enable the sanitizer"
assert counters["san.bounds_checks"] > 0, "no remote accesses were checked"
assert counters["san.violations"] == 0, \
    "a clean benchmark must produce zero violations"
print(f"xbrsan positive smoke OK: {counters['san.bounds_checks']} accesses "
      f"checked, {counters['san.ledger_records']} ledger records, "
      f"0 violations")
EOF
# Negative: the planted out-of-bounds put must be detected (exit 0 iff the
# example caught its own bug).
"$BUILD"/examples/san_violation > "$TMP/san_neg.txt"
grep -q 'XbrSan\[out_of_bounds\]' "$TMP/san_neg.txt"
echo "xbrsan negative smoke OK: planted bug detected"

echo "== [10/16] survivor-recovery chaos smoke (bench_chaos) =="
# Scripted: the acceptance kill plan (mid-barrier + mid-RMA on 12 PEs).
"$BUILD"/bench/bench_chaos --pes 12 --rounds 4 \
    --fault-kill 3:barrier:11,7:rma:4
# Soak: seeded-random kill plans; every seed must recover and verify.
"$BUILD"/bench/bench_chaos --pes 10 --seeds 8 --rounds 4

echo "== [11/16] serving chaos smoke (bench_serving, docs/SERVING.md) =="
# Scripted: one mid-RMA kill under default transport faults on 12 PEs.
"$BUILD"/bench/bench_serving --pes 12 --batches 12 --ops-per-batch 32 \
    --fault-kill 5:rma:40
# Soak: seeded kill plans + double-run determinism check. The bench itself
# exits nonzero unless every seed recovers (shrink + restore + failover),
# every survivor's books balance, accounting replays identically, and
# post-failover throughput holds >= 50% of pre-failover.
"$BUILD"/bench/bench_serving --pes 10 --batches 12 --ops-per-batch 32 \
    --seeds 4

echo "== [12/16] partition-tolerance smoke (bench_partition, docs/RESILIENCE.md) =="
# The both-sides quorum proof and the fail-fast conformance axis: the 64-PE
# scripted split (majority shrinks + verifies, minority unwinds typed), the
# unreachable-peer escalation suite, and every blocking op terminating
# typed against a dead link with a zero retry budget.
ctest --test-dir "$BUILD" \
    -R '(PartitionQuorum|UnreachableEscalation|UnreachableFailFast|LinkFaults|DegradedTopologyView|LinkConfig)' \
    --output-on-failure -j "$(nproc)"
# Scripted: the acceptance split — ranks 48-63 cut off mid-traffic at 64
# PEs. The bench exits nonzero unless the majority evicts exactly the
# scripted minority by quorum and keeps serving with balanced books.
"$BUILD"/bench/bench_partition --pes 64 --fault-partition 48-63@200000
# Soak: seeded plans (odd seeds partition a contiguous minority, even seeds
# kill 2-4 point-to-point links), each run twice for bit-identical
# accounting.
"$BUILD"/bench/bench_partition --pes 64 --seeds 2
# The committed soak (BENCH_partition.json) must satisfy the same gates.
python3 - BENCH_partition.json <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
assert data["n_pes"] >= 64, "committed soak must run at >= 64 PEs"
assert any("partition" in r["plan"] for r in data["runs"]), \
    "committed soak lacks a 2-way partition plan"
assert any("link" in r["plan"] for r in data["runs"]), \
    "committed soak lacks a point-to-point link plan"
for r in data["runs"]:
    assert r["recovered"] and r["quorum_ok"] and r["progress_ok"] \
        and r["deterministic"], f"committed seed {r['seed']} failed a gate: {r}"
assert data["all_ok"], "committed bench_partition run reported failure"
print(f"committed BENCH_partition.json OK: {len(data['runs'])} seeded splits, "
      f"every eviction by quorum, bit-identical replays")
EOF

echo "== [13/16] nbi + write-combining smoke (bench_gups, docs/COLLECTIVES.md) =="
# The explicit-handle test wall in the main build: request-RMA semantics,
# the write combiner, the three new XbrSan epochs (negative + positive),
# the hedged-nbi failover ledger, and the nbi conformance axis — each
# conformance case runs under XbrSan full internally and asserts zero
# violations across {auto,tree,ring,hier} x 1-12 PEs.
ctest --test-dir "$BUILD" \
    -R '(NbiRequest|WriteCombiner|NbiSan|ConformanceNbi|HedgedNbi)' \
    --output-on-failure -j "$(nproc)"
# Self-checking bench: the small-put storm must land bitwise-identical with
# coalescing on/off at >= 2x fewer modeled cycles, replay deterministically,
# and the chunked-nbi ring allreduce must beat the blocking ring at 64 PEs.
"$BUILD"/bench/bench_gups --json "$TMP/gups.json" > "$TMP/gups_out.txt"
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
data = json.load(open(f"{tmp}/gups.json"))
g, ar = data["gups"], data["allreduce"]
assert g["bitwise_identical"] and g["deterministic"], "storm must be exact"
assert g["speedup"] >= 2.0, f"coalescing won only {g['speedup']}x"
assert g["combiner"]["messages"] > g["combiner"]["flushes"], "no batching"
assert ar["correct"] and ar["speedup"] > 1.0, \
    f"pipelined allreduce must beat blocking ring, got {ar['speedup']}x"
assert data["all_ok"], "bench_gups reported failure"
print(f"nbi smoke OK: coalescing {g['speedup']}x over {g['combiner']['flushes']} "
      f"flushes, pipelined allreduce {ar['speedup']}x at {ar['n_pes']} PEs")
EOF

echo "== [14/16] scaling smoke (docs/SCALING.md) =="
# 256-PE conformance/recovery/chaos cases ride the integration suite; the
# 1024-PE smoke is its own slow-labeled binary.
ctest --test-dir "$BUILD" -R 'Scaling' --output-on-failure
# Log-depth check: dissemination barrier cycles from 16 to 1024 PEs must
# scale with log2(n) (ratio ~2.5x), nowhere near the 64x of a linear path.
"$BUILD"/bench/bench_scaling --pes 16,1024 --barrier-reps 16 \
    --allreduce-reps 2 --nelems 64 --json "$TMP/scaling.json" > /dev/null
python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
points = {p["n_pes"]: p for p in json.load(open(f"{tmp}/scaling.json"))["points"]}
ratio = points[1024]["barrier_cycles"] / points[16]["barrier_cycles"]
assert ratio <= 4, \
    f"barrier latency 16->1024 PEs grew {ratio:.1f}x; log-depth allows ~2.5x"
assert points[1024]["workers"] < 1024, "1024 PEs must not mean 1024 workers"
print(f"scaling smoke OK: barrier {points[16]['barrier_cycles']} -> "
      f"{points[1024]['barrier_cycles']} cycles (x{ratio:.2f} for 64x PEs), "
      f"{points[1024]['workers']} worker(s)")
EOF

echo "== [15/16] ASan+UBSan pass (full test suite) =="
cmake -B "$BUILD-asan" -S . -DXBGAS_SANITIZE=address -DXBGAS_WERROR=ON \
    -DXBGAS_BUILD_BENCH=OFF -DXBGAS_BUILD_EXAMPLES=OFF
cmake --build "$BUILD-asan" -j
ctest --test-dir "$BUILD-asan" --output-on-failure -j "$(nproc)"

echo "== [16/16] TSan pass (machine + sched + trace + fault + san + nbi + recovery + serving + conformance + scaling) =="
cmake -B "$BUILD-tsan" -S . -DXBGAS_SANITIZE=thread -DXBGAS_WERROR=ON \
    -DXBGAS_BUILD_BENCH=OFF -DXBGAS_BUILD_EXAMPLES=OFF
cmake --build "$BUILD-tsan" -j
ctest --test-dir "$BUILD-tsan" \
    -R '(machine|Machine|Barrier|Sched|trace|fault|San|Nonblocking|Nbi|WriteCombiner|Conformance|Hierarch|Knomial|Tuner|Agree|Shrink|Checkpoint|Recovery|recovery|Serving|serving|Zipf|Scaling|Partition|Unreachable|LinkFaults)' \
    --output-on-failure -j "$(nproc)"

echo "== all checks passed =="
