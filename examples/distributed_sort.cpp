// Distributed sample sort built on the paper's scatter/gather collectives:
// the root scatters unsorted keys (uneven slices — the xBGAS scatter's
// headline feature, §4.5), PEs sort locally and exchange via splitters, and
// the root gathers the globally sorted result.
//
//   ./distributed_sort [--pes 8] [--keys 65536]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "benchlib/options.hpp"
#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "xbrtime/rma.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 8));
  const auto total_keys =
      static_cast<std::size_t>(args.get_int("keys", 65536));

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, n_pes));
  machine.run([&](xbgas::PeContext&) {
    xbgas::xbrtime_init();
    const int me = xbgas::xbrtime_mype();
    const int n = xbgas::xbrtime_num_pes();
    const auto un = static_cast<std::size_t>(n);

    // The root owns the unsorted input; slices are deliberately uneven.
    std::vector<int> msgs(un), disp(un);
    {
      std::size_t assigned = 0;
      for (std::size_t r = 0; r < un; ++r) {
        const std::size_t share =
            r + 1 == un ? total_keys - assigned
                        : total_keys / un + (r % 2 ? -(total_keys / (8 * un))
                                                   : total_keys / (8 * un));
        msgs[r] = static_cast<int>(share);
        assigned += share;
      }
      std::exclusive_scan(msgs.begin(), msgs.end(), disp.begin(), 0);
    }

    std::vector<std::uint32_t> input(total_keys);
    if (me == 0) {
      xbgas::Xoshiro256ss rng(2027);
      for (auto& k : input) {
        k = static_cast<std::uint32_t>(rng.next() & 0xFFFFFF);
      }
    }

    // 1. Scatter the raw keys.
    const auto mine = static_cast<std::size_t>(msgs[static_cast<std::size_t>(me)]);
    std::vector<std::uint32_t> slice(std::max<std::size_t>(mine, 1));
    xbgas::scatter(slice.data(), input.data(), msgs.data(), disp.data(),
                   total_keys, 0);
    slice.resize(mine);

    // 2. Local sort, then splitter-based redistribution: fixed splitters
    //    over the 24-bit key space keep this example simple.
    std::sort(slice.begin(), slice.end());
    std::vector<std::int32_t> send_cnt(un, 0);
    for (const auto k : slice) {
      const auto dest = std::min<std::size_t>(
          un - 1, static_cast<std::size_t>(
                      (static_cast<std::uint64_t>(k) * un) >> 24));
      ++send_cnt[dest];
    }

    // Exchange counts and offsets, then deliver keys with one-sided puts
    // (the same pattern the NAS IS benchmark uses).
    auto* recv_cnt = static_cast<std::int32_t*>(
        xbgas::xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* my_off_for = static_cast<std::int32_t*>(
        xbgas::xbrtime_malloc(un * sizeof(std::int32_t)));
    auto* put_off = static_cast<std::int32_t*>(
        xbgas::xbrtime_malloc(un * sizeof(std::int32_t)));
    xbgas::alltoall(recv_cnt, send_cnt.data(), 1);
    std::int32_t recv_total = 0;
    for (std::size_t s = 0; s < un; ++s) {
      my_off_for[s] = recv_total;
      recv_total += recv_cnt[s];
    }
    xbgas::alltoall(put_off, my_off_for, 1);

    const std::size_t recv_cap = 4 * total_keys / un + 64;
    auto* recv_buf = static_cast<std::uint32_t*>(
        xbgas::xbrtime_malloc(recv_cap * sizeof(std::uint32_t)));
    std::size_t sent = 0;
    for (std::size_t d = 0; d < un; ++d) {
      const auto cnt = static_cast<std::size_t>(send_cnt[d]);
      if (cnt > 0) {
        xbgas::xbr_put(recv_buf + put_off[d], slice.data() + sent, cnt, 1,
                       static_cast<int>(d));
        sent += cnt;
      }
    }
    xbgas::xbrtime_barrier();

    // 3. Local merge of received runs, then gather the sorted slices.
    std::vector<std::uint32_t> sorted(recv_buf, recv_buf + recv_total);
    std::sort(sorted.begin(), sorted.end());

    auto* counts = static_cast<std::int32_t*>(
        xbgas::xbrtime_malloc(un * sizeof(std::int32_t)));
    std::int32_t mine_sorted = recv_total;
    xbgas::fcollect(counts, &mine_sorted, 1);
    std::vector<int> gmsgs(un), gdisp(un);
    for (std::size_t r = 0; r < un; ++r) gmsgs[r] = counts[r];
    std::exclusive_scan(gmsgs.begin(), gmsgs.end(), gdisp.begin(), 0);

    std::vector<std::uint32_t> result(total_keys);
    sorted.resize(std::max<std::size_t>(sorted.size(), 1));
    xbgas::gather(result.data(), sorted.data(), gmsgs.data(), gdisp.data(),
                  total_keys, 0);

    if (me == 0) {
      std::vector<std::uint32_t> reference = input;
      std::sort(reference.begin(), reference.end());
      const bool ok = result == reference;
      std::printf("distributed sort of %zu keys over %d PEs: %s\n",
                  total_keys, n, ok ? "SORTED (matches std::sort)" : "FAILED");
    }

    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(counts);
    xbgas::xbrtime_free(recv_buf);
    xbgas::xbrtime_free(put_off);
    xbgas::xbrtime_free(my_off_for);
    xbgas::xbrtime_free(recv_cnt);
    xbgas::xbrtime_close();
  });
  return 0;
}
