// 1-D heat diffusion with halo exchange over non-blocking put — the
// communication/computation overlap pattern the paper's non-blocking
// get/put forms exist for (§3.3). Each PE owns a slab of the rod; every
// step it pushes its boundary cells into its neighbours' halo slots with
// xbr_put_nb, computes the interior while the transfer is "in flight", and
// completes the halo at the barrier.
//
//   ./heat_stencil [--pes 4] [--cells-per-pe 1024] [--steps 500]

#include <cmath>
#include <cstdio>
#include <vector>

#include "benchlib/options.hpp"
#include "collectives/collectives.hpp"
#include "common/cli.hpp"
#include "xbrtime/rma.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 4));
  const auto cells = static_cast<std::size_t>(args.get_int("cells-per-pe", 1024));
  const int steps = static_cast<int>(args.get_int("steps", 500));

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, n_pes));
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    const int me = xbgas::xbrtime_mype();
    const int n = xbgas::xbrtime_num_pes();

    // Layout: [halo_left | cells... | halo_right], symmetric so neighbours
    // can put into the halo slots directly.
    auto* rod = static_cast<double*>(
        xbgas::xbrtime_malloc((cells + 2) * sizeof(double)));
    std::vector<double> next(cells + 2, 0.0);
    for (std::size_t i = 0; i < cells + 2; ++i) rod[i] = 0.0;
    if (me == 0) rod[1] = 1000.0;              // hot end
    if (me == n - 1) rod[cells] = -1000.0;     // cold end
    xbgas::xbrtime_barrier();

    const double alpha = 0.25;
    for (int step = 0; step < steps; ++step) {
      // Push boundary cells into neighbour halos, non-blocking.
      if (me > 0) {
        xbgas::xbr_put_nb(rod + cells + 1, rod + 1, 1, 1, me - 1);
      }
      if (me < n - 1) {
        xbgas::xbr_put_nb(rod, rod + cells, 1, 1, me + 1);
      }

      // Interior update overlaps with the modeled transfer latency.
      for (std::size_t i = 2; i <= cells - 1; ++i) {
        next[i] = rod[i] + alpha * (rod[i - 1] - 2 * rod[i] + rod[i + 1]);
      }

      // Barrier completes the non-blocking puts (halos are now valid) and
      // synchronizes the step.
      xbgas::xbrtime_barrier();
      next[1] = rod[1] + alpha * (rod[0] - 2 * rod[1] + rod[2]);
      next[cells] =
          rod[cells] + alpha * (rod[cells - 1] - 2 * rod[cells] + rod[cells + 1]);
      // Fixed-temperature ends.
      if (me == 0) next[1] = 1000.0;
      if (me == n - 1) next[cells] = -1000.0;
      for (std::size_t i = 1; i <= cells; ++i) rod[i] = next[i];
      xbgas::xbrtime_barrier();
    }

    // Global energy via reduction: with symmetric hot/cold ends it trends
    // to ~0 as the profile becomes linear.
    auto* local_sum = static_cast<double*>(xbgas::xbrtime_malloc(sizeof(double)));
    *local_sum = 0.0;
    for (std::size_t i = 1; i <= cells; ++i) *local_sum += rod[i];
    double total = 0.0;
    xbgas::reduce<xbgas::OpSum>(&total, local_sum, 1, 1, 0);
    if (me == 0) {
      std::printf("heat stencil: %d PEs x %zu cells, %d steps\n", n, cells,
                  steps);
      std::printf("  total heat = %.3f (antisymmetric setup -> ~0)\n", total);
      std::printf("  simulated time: %.3f ms\n",
                  pe.clock().seconds(1e9) * 1e3);
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(local_sum);
    xbgas::xbrtime_free(rod);
    xbgas::xbrtime_close();
  });
  return 0;
}
