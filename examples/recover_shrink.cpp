// Survivor recovery walkthrough (docs/RESILIENCE.md): a PE dies mid-run and
// the job finishes anyway.
//
//   * 8 PEs checkpoint their heap with xbr_checkpoint(),
//   * rank 2 is killed at a barrier by the scripted fault injector,
//   * the survivors catch PeFailedError, agree on who is still alive
//     (xbr_agree, via xbr_team_shrink), and form a 7-PE SurvivorTeam,
//   * xbr_restore() brings every survivor's heap back from the snapshot
//     and re-shards the dead rank's data onto the new team,
//   * a verified allreduce over the shrunken team proves the job can keep
//     computing after the death.
//
// Self-verifying: exits 0 when every survivor recovers and the collective
// matches the roster golden, 1 otherwise.
//
//   ./recover_shrink [--pes 8]

#include <cstdio>
#include <cstring>
#include <vector>

#include "benchlib/options.hpp"
#include "collectives/checkpoint.hpp"
#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"
#include "collectives/shrink.hpp"
#include "common/cli.hpp"
#include "xbrtime/runtime.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 8));
  constexpr std::size_t kElems = 32;
  constexpr int kVictim = 2;

  xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n_pes);
  // Kill rank 2 at its 10th barrier arrival: the first workload barrier
  // after the symmetric setup (init = 3 arrivals, two mallocs = 4,
  // xbr_checkpoint = 2 more).
  config.fault.kills.push_back(
      xbgas::KillSpec{kVictim, xbgas::KillSite::kBarrier, 10});

  xbgas::Machine machine(config);
  std::vector<int> recovered(static_cast<std::size_t>(n_pes), 0);

  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    const int me = pe.rank();
    auto* data = static_cast<long*>(
        xbgas::xbrtime_malloc(kElems * sizeof(long)));
    auto* result = static_cast<long*>(
        xbgas::xbrtime_malloc(kElems * sizeof(long)));
    for (std::size_t i = 0; i < kElems; ++i) {
      data[i] = me * 100 + static_cast<long>(i);
    }

    // Snapshot the heap while everyone is still alive. Each PE's live
    // allocations are copied into the machine's checkpoint store.
    xbgas::xbr_checkpoint();

    try {
      xbgas::xbrtime_barrier();  // rank 2 dies here
      std::printf("PE %d: (unreachable on a poisoned world)\n", me);
    } catch (const xbgas::PeFailedError& e) {
      std::printf("PE %d: saw death of rank %d, shrinking...\n", me,
                  e.failed_rank());

      // Agreement + team formation: every survivor gets the identical
      // roster, and ranks are remapped densely (0..6 on a 7-PE team).
      auto team = xbgas::xbr_team_shrink();

      // Simulate losing the working set in the crash, then restore it.
      std::memset(data, 0, kElems * sizeof(long));
      const xbgas::RestoreReport rep = xbgas::xbr_restore(*team);
      bool ok = true;
      for (std::size_t i = 0; i < kElems; ++i) {
        ok &= data[i] == me * 100 + static_cast<long>(i);
      }
      if (team->rank() == 0) {
        std::printf(
            "PE %d: restored %llu bytes; %zu orphan shard(s) from dead "
            "ranks re-dealt onto the team\n",
            me, static_cast<unsigned long long>(rep.restored_bytes),
            rep.orphans.size());
      }

      // The job goes on: a verified sum-allreduce over the survivors.
      xbgas::dispatch_reduce_all<xbgas::OpSum>(result, data, kElems, 1,
                                               *team);
      long expect = 0;
      for (const int wr : team->members()) {
        expect += wr * 100;  // element 0 of each survivor's data
      }
      ok &= result[0] == expect;
      ok &= !team->contains_world_rank(kVictim);

      recovered[static_cast<std::size_t>(me)] = ok ? 1 : 0;
      std::printf("PE %d: team rank %d/%d, allreduce[0] = %ld (%s)\n", me,
                  team->rank(), team->n_pes(), result[0],
                  ok ? "verified" : "WRONG");
    }
    // No xbrtime_close(): the world barrier stays poisoned after a death;
    // only team-scoped collectives are legal from here on.
  });

  std::printf("%s\n", machine.health().c_str());

  bool all_ok = machine.n_alive() == n_pes - 1;
  for (int r = 0; r < n_pes; ++r) {
    if (r != kVictim) {
      all_ok = all_ok && recovered[static_cast<std::size_t>(r)] == 1;
    }
  }
  std::printf("recover_shrink: %s\n",
              all_ok ? "all survivors recovered" : "FAILED");
  return all_ok ? 0 : 1;
}
