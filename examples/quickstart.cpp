// Quickstart: the xbrtime basics in ~60 lines.
//
//   * boot a simulated xBGAS machine (4 PEs by default),
//   * initialize the runtime on every PE (SPMD style),
//   * allocate symmetric shared memory,
//   * move data with one-sided put/get,
//   * synchronize with barriers, and
//   * combine values with a broadcast + reduction.
//
//   ./quickstart [--pes 4] [--topology flat]

#include <cstdio>

#include "benchlib/options.hpp"
#include "collectives/collectives.hpp"
#include "common/cli.hpp"
#include "xbrtime/rma.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 4));

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, n_pes));
  machine.run([&](xbgas::PeContext&) {
    xbgas::xbrtime_init();
    const int me = xbgas::xbrtime_mype();
    const int n = xbgas::xbrtime_num_pes();

    // Symmetric allocation: the same offset on every PE, so any PE can
    // address any other PE's copy.
    auto* mailbox = static_cast<long*>(xbgas::xbrtime_malloc(sizeof(long)));
    *mailbox = -1;
    xbgas::xbrtime_barrier();

    // One-sided put: write my rank into my right neighbour's mailbox.
    const long token = 100 + me;
    xbgas::xbr_put(mailbox, &token, 1, 1, (me + 1) % n);
    xbgas::xbrtime_barrier();

    std::printf("PE %d: mailbox = %ld (from PE %d)\n", me, *mailbox,
                (me - 1 + n) % n);

    // One-sided get: read the left neighbour's mailbox.
    long peeked = 0;
    xbgas::xbr_get(&peeked, mailbox, 1, 1, (me - 1 + n) % n);

    // Collectives: PE 0 broadcasts a factor; everyone reduces a product.
    auto* factor = static_cast<long*>(xbgas::xbrtime_malloc(sizeof(long)));
    const long two = 2;
    xbgas::broadcast(factor, &two, 1, 1, /*root=*/0);

    auto* contrib = static_cast<long*>(xbgas::xbrtime_malloc(sizeof(long)));
    *contrib = (me + 1) * *factor;
    long total = 0;
    xbgas::reduce<xbgas::OpSum>(&total, contrib, 1, 1, /*root=*/0);
    if (me == 0) {
      std::printf("PE 0: sum of 2*(rank+1) over %d PEs = %ld (expected %d)\n",
                  n, total, n * (n + 1));
    }

    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(contrib);
    xbgas::xbrtime_free(factor);
    xbgas::xbrtime_free(mailbox);
    xbgas::xbrtime_close();
  });
  return 0;
}
