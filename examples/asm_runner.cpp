// asm_runner — assemble and execute an xBGAS assembly file on a simulated
// machine, SPMD style: every PE runs the same program with its rank in a0
// and its PE count in a1 (so programs can branch by rank), against its own
// memory and OLB. Demonstrates the full toolchain substrate: text assembly
// -> encoded words -> interpreter -> remote effects.
//
//   ./asm_runner <file.s> [--pes 2] [--dump-x 5,9,10]
//
// With no file argument, runs a built-in demo program that passes each
// PE's rank to its right neighbour through remote stores.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchlib/options.hpp"
#include "common/cli.hpp"
#include "isa/assembler.hpp"
#include "isa/hart.hpp"
#include "olb/olb.hpp"
#include "xbrtime/runtime.hpp"

namespace {

// Demo: store (100 + my rank) into the right neighbour's scratch word, then
// load my own scratch back. a0 = rank, a1 = n_pes; the scratch word lives
// at a fixed symmetric offset prepared by the host below and passed in a2.
constexpr const char* kDemo = R"(
    # next = (rank + 1) % n
    addi t0, a0, 1
    rem  t0, t0, a1
    addi t0, t0, 1        # object ID = rank + 1
    eaddie e6, t0, 0      # e6 <- neighbour's object ID
    mv   x6, a2           # x6 <- symmetric scratch address
    addi t2, a0, 100
    esd  t2, 0(x6)        # remote store into the neighbour
    ecall
)";

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 2));

  std::string source = kDemo;
  if (!args.positional().empty()) {
    std::ifstream in(args.positional().front());
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n",
                   args.positional().front().c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  const xbgas::isa::Program program = xbgas::isa::assemble(source);
  std::printf("== assembled %zu instructions ==\n%s\n", program.size(),
              xbgas::isa::disassemble(program).c_str());

  const auto dump = args.get_int_list("dump-x", {});
  xbgas::Machine machine(xbgas::machine_config_from_cli(args, n_pes));
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* scratch =
        static_cast<std::uint64_t*>(xbgas::xbrtime_malloc(sizeof(std::uint64_t)));
    *scratch = 0;
    const auto addr = static_cast<std::uint64_t>(
        reinterpret_cast<std::byte*>(scratch) - pe.arena().base());
    xbgas::xbrtime_barrier();

    xbgas::isa::Hart hart(pe.port());
    hart.regs().set_x(10, static_cast<std::uint64_t>(pe.rank()));   // a0
    hart.regs().set_x(11, static_cast<std::uint64_t>(n_pes));       // a1
    hart.regs().set_x(12, addr);                                    // a2
    hart.load_program(program);
    const auto halt = hart.run();
    pe.clock().advance(hart.cycles());
    xbgas::xbrtime_barrier();

    std::printf("PE %d: halt=%s insts=%llu cycles=%llu scratch=0x%llx\n",
                pe.rank(),
                halt == xbgas::isa::Hart::Halt::kEcall ? "ecall" : "other",
                static_cast<unsigned long long>(hart.stats().instructions),
                static_cast<unsigned long long>(hart.cycles()),
                static_cast<unsigned long long>(*scratch));
    for (const int reg : dump) {
      std::printf("PE %d: x%d = 0x%llx\n", pe.rank(), reg,
                  static_cast<unsigned long long>(
                      hart.regs().x(static_cast<unsigned>(reg))));
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(scratch);
    xbgas::xbrtime_close();
  });
  return 0;
}
