// Tour of the xBGAS ISA layer (paper §3.2 / Figure 1): build a program with
// the in-memory assembler, disassemble it, execute it on the interpreter
// against two PEs' memories, and dump the extended register file. The
// program writes a value into a *remote* PE's shared segment using the
// extended-addressing instructions (eaddie + esd), then reads it back with
// the raw form (erld).
//
//   ./isa_tour

#include <cstdio>

#include "benchlib/options.hpp"
#include "common/cli.hpp"
#include "isa/encoder.hpp"
#include "isa/hart.hpp"
#include "olb/olb.hpp"
#include "xbrtime/runtime.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  xbgas::Machine machine(xbgas::machine_config_from_cli(args, 2));

  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* slot =
        static_cast<std::uint64_t*>(xbgas::xbrtime_malloc(sizeof(std::uint64_t)));
    *slot = 0;
    const auto addr = static_cast<std::int64_t>(
        reinterpret_cast<std::byte*>(slot) - pe.arena().base());
    xbgas::xbrtime_barrier();

    if (pe.rank() == 0) {
      using namespace xbgas::isa;
      ProgramBuilder b;
      b.li(7, static_cast<std::int64_t>(xbgas::object_id_for_pe(1)));
      b.eaddie(6, 7, 0);   // e6 <- object ID of PE 1
      b.li(6, addr);       // x6 <- symmetric address of `slot`
      b.li(8, 0xC0FFEE);
      b.esd(8, 6, 0);      // remote store: PE1.slot <- 0xC0FFEE
      b.erld(9, 6, 6);     // raw remote load back into x9
      b.ecall();
      const Program prog = b.build();

      std::printf("== Generated xBGAS program (PE 0) ==\n");
      for (std::size_t i = 0; i < prog.size(); ++i) {
        std::printf("  %3zu: %08x   %s\n", i * 4, prog.words[i],
                    to_string(prog.insts[i]).c_str());
      }

      Hart hart(pe.port());
      hart.load_program(prog);
      const auto halt = hart.run();
      std::printf("\n== Execution ==\n");
      std::printf("  halt: %s after %llu instructions, %llu cycles\n",
                  halt == Hart::Halt::kEcall ? "ecall" : "other",
                  static_cast<unsigned long long>(hart.stats().instructions),
                  static_cast<unsigned long long>(hart.cycles()));
      std::printf("  remote stores: %llu, remote loads: %llu\n",
                  static_cast<unsigned long long>(hart.stats().remote_stores),
                  static_cast<unsigned long long>(hart.stats().remote_loads));

      std::printf("\n== Extended register file (Figure 1, nonzero regs) ==\n");
      for (unsigned r = 0; r < 32; ++r) {
        if (hart.regs().x(r) != 0 || hart.regs().e(r) != 0) {
          std::printf("  x%-2u = 0x%016llx    e%-2u = 0x%016llx\n", r,
                      static_cast<unsigned long long>(hart.regs().x(r)), r,
                      static_cast<unsigned long long>(hart.regs().e(r)));
        }
      }
      std::printf("\n  x9 (erld result) = 0x%llx\n",
                  static_cast<unsigned long long>(hart.regs().x(9)));

      const auto& olb = pe.olb().stats();
      std::printf("\n== OLB statistics (PE 0) ==\n");
      std::printf("  lookups %llu, hits %llu, local shortcuts %llu\n",
                  static_cast<unsigned long long>(olb.lookups),
                  static_cast<unsigned long long>(olb.hits),
                  static_cast<unsigned long long>(olb.local_shortcuts));
    }
    xbgas::xbrtime_barrier();
    if (pe.rank() == 1) {
      std::printf("\nPE 1 sees slot = 0x%llx (written remotely by PE 0)\n",
                  static_cast<unsigned long long>(*slot));
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(slot);
    xbgas::xbrtime_close();
  });
  return 0;
}
