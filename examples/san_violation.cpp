// Deliberately buggy program — the XbrSan negative smoke (docs/SANITIZER.md).
//
// Every PE allocates an 8-element symmetric buffer; PE 0 then puts 64
// elements through it, overrunning its neighbour's allocation by 448 bytes.
// Under --xbrsan bounds|full (default here: full) the sanitizer rejects the
// transfer before a single byte moves, the PE unwinds, and Machine::run
// surfaces the violation as an SpmdRegionError naming the check and entry
// point. The example *verifies* that this happens and exits 0 only if the
// bug was caught — so CI can assert the detector actually detects.
//
//   ./san_violation [--pes 2] [--xbrsan full]

#include <cstdio>
#include <cstring>
#include <vector>

#include "benchlib/options.hpp"
#include "common/cli.hpp"
#include "fault/errors.hpp"
#include "xbrtime/rma.hpp"

int main(int argc, char** argv) {
  xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 2));

  xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n_pes);
  if (!args.has("xbrsan")) config.san.mode = xbgas::SanMode::kFull;
  if (!config.san.enabled()) {
    std::fprintf(stderr,
                 "san_violation: refusing to run with --xbrsan off — this "
                 "program contains a real out-of-bounds write\n");
    return 2;
  }

  xbgas::Machine machine(config);
  try {
    machine.run([&](xbgas::PeContext&) {
      xbgas::xbrtime_init();
      auto* buf = static_cast<long*>(xbgas::xbrtime_malloc(8 * sizeof(long)));
      xbgas::xbrtime_barrier();
      if (xbgas::xbrtime_mype() == 0) {
        // BUG: 64 elements into an 8-element symmetric allocation.
        std::vector<long> src(64, 7);
        xbgas::xbr_put(buf, src.data(), 64, 1, 1);
      }
      xbgas::xbrtime_barrier();
      xbgas::xbrtime_free(buf);
      xbgas::xbrtime_close();
    });
  } catch (const xbgas::SpmdRegionError& e) {
    if (std::strstr(e.what(), "XbrSan[out_of_bounds]") != nullptr &&
        std::strstr(e.what(), "xbr_put") != nullptr) {
      std::printf("san_violation: XbrSan caught the planted bug:\n%s\n",
                  e.what());
      return 0;
    }
    std::fprintf(stderr,
                 "san_violation: region failed, but not with the expected "
                 "out-of-bounds diagnostic:\n%s\n",
                 e.what());
    return 1;
  }
  std::fprintf(stderr,
               "san_violation: the out-of-bounds put was NOT detected\n");
  return 1;
}
