// Distributed histogram — the reduction-heavy workload class the paper's
// evaluation targets. Every PE draws samples from a shared distribution,
// bins them locally, and the bin counts are combined with the binomial-tree
// reduction; the summary statistics come back via broadcast. A team variant
// (paper §7 future work) then histograms the even PEs only.
//
//   ./histogram_reduction [--pes 8] [--samples 100000] [--bins 32]

#include <cstdio>
#include <vector>

#include "benchlib/options.hpp"
#include "collectives/collectives.hpp"
#include "collectives/composed.hpp"
#include "collectives/team.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 8));
  const auto samples =
      static_cast<std::size_t>(args.get_int("samples", 100000));
  const auto bins = static_cast<std::size_t>(args.get_int("bins", 32));

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, n_pes));
  machine.run([&](xbgas::PeContext&) {
    xbgas::xbrtime_init();
    const int me = xbgas::xbrtime_mype();
    const int n = xbgas::xbrtime_num_pes();

    // Local sampling: sum of two uniforms => triangular distribution.
    auto* local = static_cast<std::int64_t*>(
        xbgas::xbrtime_malloc(bins * sizeof(std::int64_t)));
    std::fill(local, local + bins, 0);
    xbgas::Xoshiro256ss rng(static_cast<std::uint64_t>(me) + 42);
    for (std::size_t s = 0; s < samples; ++s) {
      const double x = 0.5 * (rng.next_double() + rng.next_double());
      ++local[static_cast<std::size_t>(x * static_cast<double>(bins))];
    }

    // Global histogram on every PE (reduce + broadcast composition).
    auto* global = static_cast<std::int64_t*>(
        xbgas::xbrtime_malloc(bins * sizeof(std::int64_t)));
    xbgas::reduce_all<xbgas::OpSum>(global, local, bins, 1);

    if (me == 0) {
      std::printf("Global histogram over %d PEs x %zu samples:\n", n, samples);
      std::int64_t peak = 1;
      for (std::size_t b = 0; b < bins; ++b) peak = std::max(peak, global[b]);
      for (std::size_t b = 0; b < bins; ++b) {
        const int width = static_cast<int>(60 * global[b] / peak);
        std::printf("  bin %2zu %8lld |%.*s\n", b,
                    static_cast<long long>(global[b]), width,
                    "############################################################");
      }
    }

    // Min/max occupancy via dedicated reductions.
    std::int64_t lo = 0, hi = 0;
    xbgas::reduce<xbgas::OpMin>(&lo, local, 1, 1, 0);
    xbgas::reduce<xbgas::OpMax>(&hi, local, 1, 1, 0);
    if (me == 0) {
      std::printf("bin 0 occupancy across PEs: min %lld, max %lld\n",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    }

    // Team variant: even PEs only (future-work subset collectives).
    if (n >= 4 && me % 2 == 0) {
      xbgas::Team evens(0, 2, n / 2);
      auto* team_hist = static_cast<std::int64_t*>(
          xbgas::xbrtime_malloc(bins * sizeof(std::int64_t)));
      xbgas::reduce_all<xbgas::OpSum>(team_hist, local, bins, 1, evens);
      if (evens.rank() == 0) {
        std::int64_t total = 0;
        for (std::size_t b = 0; b < bins; ++b) total += team_hist[b];
        std::printf("even-PE team histogram total: %lld samples (%d PEs)\n",
                    static_cast<long long>(total), evens.n_pes());
      }
      xbgas::xbrtime_free(team_hist);
    } else if (n >= 4) {
      // Odd PEs still participate in the collective frees' world barriers.
      auto* team_hist = static_cast<std::int64_t*>(
          xbgas::xbrtime_malloc(bins * sizeof(std::int64_t)));
      xbgas::xbrtime_free(team_hist);
    }

    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(global);
    xbgas::xbrtime_free(local);
    xbgas::xbrtime_close();
  });
  return 0;
}
