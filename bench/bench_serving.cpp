// Chaos-soak SLO harness for the sharded KV serving layer
// (docs/SERVING.md): drive deterministic Zipfian read/write traffic against
// the symmetric-heap store while PEs are killed mid-traffic, let the
// serving clients fail over (agree -> shrink -> restore -> rebalance ->
// replay), and report throughput plus p50/p99/p999 latency split into
// pre/during/post-failover phases. Exits nonzero unless every run recovers,
// every ledger balances (requests == served + failed, per survivor and in
// aggregate — no request is ever silently dropped), soak seeds reproduce
// identical accounting when run twice, and post-failover throughput holds
// at >= 50% of pre-failover.
//
//   Scripted:  bench_serving --pes 12 --fault-kill 3:rma:200
//   Soak:      bench_serving --pes 12 --seeds 6 [--seed-base 1]
//   JSON:      add --json BENCH_serving.json
//
//   --pes N            PEs per machine (default 12)
//   --batches N        request batches per PE (default 18)
//   --ops-per-batch N  requests per batch per PE (default 48)
//   --keys N           keys in the table (default 2048)
//   --stripes N        hot-counter stripes (default 64)
//   --put-pct N        percent puts (default 20)
//   --incr-pct N       percent incrs (default 10; remainder are gets)
//   --zipf-s X         Zipf exponent (default 0.99)
//   --policy P         in-flight policy on failover: replay|failfast
//   --checkpoint-every N  batches between checkpoints (default 4)
//   --no-replicate     disable write-through replication
//   --workload-seed N  traffic seed (default 42; soak seeds derive kills
//                      AND reuse the seed for traffic)
//   --seeds N          soak mode: N seeded runs, each run twice to verify
//                      deterministic accounting
//   --seed-base N      first soak seed (default 1)
//   --json PATH        write the SLO report as JSON
//
// When no --fault-* probability flags are given, a default tail-fault mix
// is injected (drops exhaust the machine's RMA retries often enough to
// exercise serving-level retries; delays overrun the attempt budget often
// enough to exercise hedges). Standard machine/fault/trace flags
// (benchlib/options.hpp) override everything.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/zipf.hpp"
#include "common/cli.hpp"
#include "machine/machine.hpp"
#include "serving/client.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace {

constexpr int kNumPhases = 3;
const char* const kPhaseNames[kNumPhases] = {"pre", "during", "post"};

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// 1-2 kills on distinct ranks, derived deterministically from the seed.
/// All kills use the RMA-issue site: every request performs at least two
/// RMA/AMO issues (hot-counter bump + data op), so an issue count inside
/// the traffic range is guaranteed to land mid-traffic — after the
/// symmetric setup, before the tail batches (so a post-failover phase
/// always exists). Barrier-site kills are covered by bench_chaos.
std::vector<xbgas::KillSpec> derive_kills(std::uint64_t seed, int n_pes,
                                          int batches, int ops_per_batch) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  const std::uint64_t traffic =
      static_cast<std::uint64_t>(batches) *
      static_cast<std::uint64_t>(ops_per_batch);
  std::vector<xbgas::KillSpec> kills;
  const int n_kills = 1 + static_cast<int>(splitmix64(s) % 2);
  for (int i = 0; i < n_kills; ++i) {
    xbgas::KillSpec k;
    for (;;) {
      k.rank = static_cast<int>(splitmix64(s) %
                                static_cast<std::uint64_t>(n_pes));
      bool fresh = true;
      for (const xbgas::KillSpec& seen : kills) fresh &= seen.rank != k.rank;
      if (fresh) break;
    }
    k.site = xbgas::KillSite::kRma;
    // Issue counts run ~2.5x the request count; [opb/2, traffic] detects
    // the death by roughly 40% of the batch schedule at the latest.
    k.at = static_cast<std::uint64_t>(ops_per_batch) / 2 +
           splitmix64(s) % (traffic - static_cast<std::uint64_t>(
                                          ops_per_batch) / 2 + 1);
    kills.push_back(k);
  }
  return kills;
}

struct PhaseAgg {
  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  std::uint64_t span = 0;  ///< max modeled-cycle span over survivors
  std::vector<std::uint64_t> latencies;

  double throughput_per_mcycle() const {
    if (span == 0) return 0.0;
    return static_cast<double>(requests) * 1.0e6 /
           static_cast<double>(span);
  }
  std::uint64_t percentile(double p) const {
    if (latencies.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(idx, latencies.size() - 1)];
  }
};

struct SeedResult {
  bool region_ok = false;
  bool recovered = false;   ///< kills fired and every death was failed over
  bool books_ok = false;    ///< per-survivor and aggregate ledgers balance
  bool tput_ok = false;     ///< post >= 50% of pre throughput
  std::uint64_t kills = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t restores = 0;
  int pes_alive = 0;
  xbgas::ServingCounters totals;
  PhaseAgg phases[kNumPhases];
  std::string plan;

  bool ok(bool expect_kills) const {
    return region_ok && books_ok && tput_ok &&
           (!expect_kills || recovered);
  }
};

/// Accounting totals that must be bit-identical across reruns of one seed.
struct AccountingKey {
  std::uint64_t v[12];
  bool operator==(const AccountingKey& o) const {
    for (int i = 0; i < 12; ++i) {
      if (v[i] != o.v[i]) return false;
    }
    return true;
  }
};

AccountingKey accounting_key(const xbgas::ServingCounters& c) {
  return AccountingKey{{c.requests, c.served, c.failed, c.retries,
                        c.requests_retried, c.hedges, c.redirected,
                        c.replica_skips, c.failovers, c.replayed,
                        c.failed_fast, c.rebalanced_keys}};
}

struct BenchParams {
  xbgas::ServingConfig serving;
  xbgas::ServingMix mix;
  int batches = 18;
  int ops_per_batch = 48;
  std::uint64_t workload_seed = 42;
};

SeedResult run_once(xbgas::MachineConfig config, const BenchParams& params,
                    const xbgas::CliArgs& args, bool observe) {
  const int n_pes = config.n_pes;
  xbgas::serving_counters_reset();

  struct PerRank {
    std::vector<std::uint64_t> lat[kNumPhases];
    std::uint64_t req[kNumPhases] = {0, 0, 0};
    std::uint64_t fail[kNumPhases] = {0, 0, 0};
    std::uint64_t span[kNumPhases] = {0, 0, 0};
    bool books = false;
    bool finished = false;
  };
  std::vector<PerRank> per(static_cast<std::size_t>(n_pes));

  xbgas::Machine machine(config);
  const auto body = [&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    xbgas::KvStore store(params.serving);
    xbgas::ServingClient client(store, params.serving);
    xbgas::ServingTraffic traffic(params.workload_seed, pe.rank(),
                                  params.serving.n_keys, params.mix);
    PerRank& mine = per[static_cast<std::size_t>(pe.rank())];
    int phase = 0;
    int during_left = 0;
    std::uint64_t t_phase_start = pe.clock().cycles();
    for (int b = 0; b < params.batches; ++b) {
      for (int i = 0; i < params.ops_per_batch; ++i) {
        const xbgas::ServingOutcome out = client.execute(traffic.next());
        ++mine.req[phase];
        if (out.served) {
          mine.lat[phase].push_back(out.latency_cycles);
        } else {
          ++mine.fail[phase];
        }
      }
      const std::uint64_t t_bar = pe.clock().cycles();
      if (client.end_batch()) {
        // Failover(s) inside this barrier: the current phase ends where the
        // failing barrier began, and "during" — which absorbs the recovery
        // pause plus the first shrunken-roster batch — starts there.
        mine.span[phase] += t_bar - t_phase_start;
        phase = 1;
        t_phase_start = t_bar;
        during_left = 1;
      } else if (phase == 1 && --during_left <= 0) {
        const std::uint64_t now = pe.clock().cycles();
        mine.span[1] += now - t_phase_start;
        phase = 2;
        t_phase_start = now;
      }
    }
    mine.span[phase] += pe.clock().cycles() - t_phase_start;
    mine.books = client.counters().books_balance();
    client.finish();
    mine.finished = true;
    // No xbrtime_close(): after a death the world barrier stays poisoned.
  };

  SeedResult res;
  res.region_ok = true;
  try {
    machine.run(body);
  } catch (const xbgas::SpmdRegionError& e) {
    res.region_ok = false;
    std::printf("unrecovered region: %s\n", e.what());
  }

  const xbgas::CounterRegistry counters = xbgas::collect_counters(machine);
  res.kills = counters.get("fault.injected.kills").value();
  res.shrinks = counters.get("recovery.shrinks").value();
  res.restores = counters.get("recovery.restores").value();
  res.pes_alive = machine.n_alive();
  res.totals = xbgas::serving_counters_snapshot();

  bool survivor_books = true;
  for (int r = 0; r < n_pes; ++r) {
    const PerRank& pr = per[static_cast<std::size_t>(r)];
    if (!machine.alive(r)) continue;
    survivor_books = survivor_books && pr.finished && pr.books;
    for (int ph = 0; ph < kNumPhases; ++ph) {
      res.phases[ph].requests += pr.req[ph];
      res.phases[ph].failed += pr.fail[ph];
      res.phases[ph].span = std::max(res.phases[ph].span, pr.span[ph]);
      res.phases[ph].latencies.insert(res.phases[ph].latencies.end(),
                                      pr.lat[ph].begin(), pr.lat[ph].end());
    }
  }
  for (int ph = 0; ph < kNumPhases; ++ph) {
    std::sort(res.phases[ph].latencies.begin(),
              res.phases[ph].latencies.end());
  }

  const bool deaths_expected = !config.fault.kills.empty();
  res.books_ok = res.region_ok && survivor_books &&
                 res.totals.books_balance() &&
                 machine.n_alive() == n_pes - static_cast<int>(res.kills) &&
                 machine.failed_ranks().size() == res.kills;
  res.recovered = res.region_ok && res.kills >= 1 && res.shrinks >= 1 &&
                  res.restores >= 1 && res.totals.failovers >= 1;
  if (deaths_expected) {
    const double pre = res.phases[0].throughput_per_mcycle();
    const double post = res.phases[2].throughput_per_mcycle();
    res.tput_ok = pre > 0.0 && post >= 0.5 * pre;
  } else {
    res.tput_ok = true;
  }
  if (!res.ok(deaths_expected)) {
    std::printf("%s\n", machine.health().c_str());
  }
  if (observe) xbgas::emit_observability(machine, args);
  return res;
}

void print_result(const std::string& label, const SeedResult& r, int n_pes,
                  bool expect_kills) {
  std::printf(
      "%s  kills %llu  failovers %llu  alive %d/%d  req %llu  served %llu  "
      "failed %llu  retried %llu  hedged %llu  redirected %llu  "
      "replayed %llu  failfast %llu  %s\n",
      label.c_str(), static_cast<unsigned long long>(r.kills),
      static_cast<unsigned long long>(r.totals.failovers), r.pes_alive,
      n_pes, static_cast<unsigned long long>(r.totals.requests),
      static_cast<unsigned long long>(r.totals.served),
      static_cast<unsigned long long>(r.totals.failed),
      static_cast<unsigned long long>(r.totals.requests_retried),
      static_cast<unsigned long long>(r.totals.hedges),
      static_cast<unsigned long long>(r.totals.redirected),
      static_cast<unsigned long long>(r.totals.replayed),
      static_cast<unsigned long long>(r.totals.failed_fast),
      r.ok(expect_kills) ? "OK" : "FAIL");
  for (int ph = 0; ph < kNumPhases; ++ph) {
    const PhaseAgg& p = r.phases[ph];
    if (p.requests == 0) continue;
    std::printf(
        "    %-6s  req %-6llu  tput %8.1f ops/Mcycle  p50 %-6llu  "
        "p99 %-6llu  p999 %llu\n",
        kPhaseNames[ph], static_cast<unsigned long long>(p.requests),
        p.throughput_per_mcycle(),
        static_cast<unsigned long long>(p.percentile(0.50)),
        static_cast<unsigned long long>(p.percentile(0.99)),
        static_cast<unsigned long long>(p.percentile(0.999)));
  }
}

void write_json(std::FILE* f, const BenchParams& params, int n_pes,
                const std::vector<std::pair<std::uint64_t, SeedResult>>& runs,
                const std::vector<bool>& deterministic, bool all_ok) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"n_pes\": %d,\n", n_pes);
  std::fprintf(f, "  \"batches\": %d,\n", params.batches);
  std::fprintf(f, "  \"ops_per_batch\": %d,\n", params.ops_per_batch);
  std::fprintf(f, "  \"n_keys\": %zu,\n", params.serving.n_keys);
  std::fprintf(f, "  \"zipf_s\": %.3f,\n", params.mix.zipf_s);
  std::fprintf(f, "  \"put_pct\": %d,\n", params.mix.put_pct);
  std::fprintf(f, "  \"incr_pct\": %d,\n", params.mix.incr_pct);
  std::fprintf(f, "  \"replicate\": %s,\n",
               params.serving.replicate ? "true" : "false");
  std::fprintf(f, "  \"policy\": \"%s\",\n",
               xbgas::inflight_policy_name(params.serving.policy));
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SeedResult& r = runs[i].second;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"seed\": %llu,\n",
                 static_cast<unsigned long long>(runs[i].first));
    std::fprintf(f, "      \"plan\": \"%s\",\n", r.plan.c_str());
    std::fprintf(f, "      \"kills\": %llu,\n",
                 static_cast<unsigned long long>(r.kills));
    std::fprintf(f, "      \"failovers\": %llu,\n",
                 static_cast<unsigned long long>(r.totals.failovers));
    std::fprintf(f, "      \"recovered\": %s,\n",
                 r.recovered ? "true" : "false");
    std::fprintf(f, "      \"deterministic\": %s,\n",
                 (i < deterministic.size() && deterministic[i]) ? "true"
                                                                : "false");
    std::fprintf(
        f,
        "      \"accounting\": {\"requests\": %llu, \"served\": %llu, "
        "\"failed\": %llu, \"retries\": %llu, \"requests_retried\": %llu, "
        "\"attempt_timeouts\": %llu, \"hedges\": %llu, "
        "\"redirected\": %llu, \"replica_skips\": %llu, "
        "\"replayed\": %llu, \"failed_fast\": %llu, "
        "\"rebalanced_keys\": %llu},\n",
        static_cast<unsigned long long>(r.totals.requests),
        static_cast<unsigned long long>(r.totals.served),
        static_cast<unsigned long long>(r.totals.failed),
        static_cast<unsigned long long>(r.totals.retries),
        static_cast<unsigned long long>(r.totals.requests_retried),
        static_cast<unsigned long long>(r.totals.attempt_timeouts),
        static_cast<unsigned long long>(r.totals.hedges),
        static_cast<unsigned long long>(r.totals.redirected),
        static_cast<unsigned long long>(r.totals.replica_skips),
        static_cast<unsigned long long>(r.totals.replayed),
        static_cast<unsigned long long>(r.totals.failed_fast),
        static_cast<unsigned long long>(r.totals.rebalanced_keys));
    std::fprintf(f, "      \"phases\": {\n");
    for (int ph = 0; ph < kNumPhases; ++ph) {
      const PhaseAgg& p = r.phases[ph];
      std::fprintf(
          f,
          "        \"%s\": {\"requests\": %llu, \"failed\": %llu, "
          "\"span_cycles\": %llu, \"throughput_ops_per_mcycle\": %.1f, "
          "\"p50_cycles\": %llu, \"p99_cycles\": %llu, "
          "\"p999_cycles\": %llu}%s\n",
          kPhaseNames[ph], static_cast<unsigned long long>(p.requests),
          static_cast<unsigned long long>(p.failed),
          static_cast<unsigned long long>(p.span),
          p.throughput_per_mcycle(),
          static_cast<unsigned long long>(p.percentile(0.50)),
          static_cast<unsigned long long>(p.percentile(0.99)),
          static_cast<unsigned long long>(p.percentile(0.999)),
          ph + 1 < kNumPhases ? "," : "");
    }
    std::fprintf(f, "      },\n");
    const double pre = r.phases[0].throughput_per_mcycle();
    const double post = r.phases[2].throughput_per_mcycle();
    std::fprintf(f, "      \"post_over_pre_throughput\": %.3f\n",
                 pre > 0.0 ? post / pre : 0.0);
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"all_ok\": %s\n", all_ok ? "true" : "false");
  std::fprintf(f, "}\n");
}

std::string plan_string(const std::vector<xbgas::KillSpec>& kills) {
  std::string plan;
  for (const xbgas::KillSpec& k : kills) {
    const char* site = k.site == xbgas::KillSite::kBarrier ? "barrier"
                       : k.site == xbgas::KillSite::kRma   ? "rma"
                                                           : "agree";
    plan += (plan.empty() ? "" : ",") + std::to_string(k.rank) + ":" + site +
            ":" + std::to_string(k.at);
  }
  return plan;
}

/// Default tail-fault mix when the user injected nothing: drops frequent
/// enough (vs the machine's per-transfer retry budget) that exhaustion —
/// i.e. a failed serving attempt — actually happens, delays long enough to
/// overrun the attempt budget and arm hedges.
void apply_default_faults(xbgas::MachineConfig& config) {
  xbgas::FaultConfig& fc = config.fault;
  if (fc.rma_drop_prob > 0.0 || fc.rma_delay_prob > 0.0 ||
      fc.rma_bitflip_prob > 0.0 || fc.amo_drop_prob > 0.0 ||
      fc.amo_delay_prob > 0.0) {
    return;  // the user configured faults; leave them alone
  }
  fc.rma_drop_prob = 0.08;
  fc.amo_drop_prob = 0.08;
  fc.rma_delay_prob = 0.05;
  fc.amo_delay_prob = 0.05;
  fc.delay_cycles = 6000;
  fc.max_rma_retries = 1;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 12));
  const int n_seeds = static_cast<int>(args.get_int("seeds", 0));
  const auto seed_base =
      static_cast<std::uint64_t>(args.get_int("seed-base", 1));

  BenchParams params;
  params.batches = static_cast<int>(args.get_int("batches", 18));
  params.ops_per_batch =
      static_cast<int>(args.get_int("ops-per-batch", 48));
  params.workload_seed =
      static_cast<std::uint64_t>(args.get_int("workload-seed", 42));
  params.serving.n_keys =
      static_cast<std::size_t>(args.get_int("keys", 2048));
  params.serving.hot_stripes =
      static_cast<std::size_t>(args.get_int("stripes", 64));
  params.serving.replicate = !args.has("no-replicate");
  params.serving.policy =
      xbgas::parse_inflight_policy(args.get("policy", "replay"));
  params.serving.checkpoint_every =
      static_cast<int>(args.get_int("checkpoint-every", 4));
  params.serving.op_timeout_cycles =
      static_cast<std::uint64_t>(args.get_int("op-timeout", 400000));
  params.serving.attempt_timeout_cycles =
      static_cast<std::uint64_t>(args.get_int("attempt-timeout", 4000));
  params.serving.max_request_retries =
      static_cast<int>(args.get_int("serving-retries", 3));
  params.serving.hedge_after =
      static_cast<int>(args.get_int("hedge-after", 1));
  params.mix.put_pct = static_cast<int>(args.get_int("put-pct", 20));
  params.mix.incr_pct = static_cast<int>(args.get_int("incr-pct", 10));
  params.mix.zipf_s = args.get_double("zipf-s", 0.99);
  xbgas::validate_serving_config(params.serving);

  std::printf(
      "== Serving chaos soak: sharded KV under PE kills (%d PEs, %d batches "
      "x %d ops, %zu keys, zipf %.2f, policy %s) ==\n",
      n_pes, params.batches, params.ops_per_batch, params.serving.n_keys,
      params.mix.zipf_s,
      xbgas::inflight_policy_name(params.serving.policy));

  std::vector<std::pair<std::uint64_t, SeedResult>> runs;
  std::vector<bool> deterministic;
  bool ok = true;

  if (n_seeds > 0) {
    for (int i = 0; i < n_seeds; ++i) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      xbgas::MachineConfig config =
          xbgas::machine_config_from_cli(args, n_pes);
      apply_default_faults(config);
      config.fault.seed = seed;
      config.fault.kills =
          derive_kills(seed, n_pes, params.batches, params.ops_per_batch);
      BenchParams seed_params = params;
      seed_params.workload_seed = seed;

      SeedResult r = run_once(config, seed_params, args, /*observe=*/false);
      r.plan = plan_string(config.fault.kills);
      // Rerun the identical seed: the accounting totals must be
      // bit-identical regardless of host scheduling.
      const SeedResult r2 =
          run_once(config, seed_params, args, /*observe=*/false);
      const bool det =
          accounting_key(r.totals) == accounting_key(r2.totals);
      deterministic.push_back(det);
      if (!det) {
        std::printf("seed %llu: NONDETERMINISTIC accounting across reruns\n",
                    static_cast<unsigned long long>(seed));
      }
      ok = ok && r.ok(/*expect_kills=*/true) && det;
      print_result("seed " + std::to_string(seed) + "  plan " + r.plan, r,
                   n_pes, /*expect_kills=*/true);
      runs.emplace_back(seed, std::move(r));
    }
  } else {
    xbgas::MachineConfig config =
        xbgas::machine_config_from_cli(args, n_pes);
    apply_default_faults(config);
    const bool expect_kills = !config.fault.kills.empty();
    SeedResult r = run_once(config, params, args, /*observe=*/true);
    r.plan = plan_string(config.fault.kills);
    deterministic.push_back(true);
    ok = ok && r.ok(expect_kills);
    print_result("scripted  plan " + (r.plan.empty() ? "none" : r.plan), r,
                 n_pes, expect_kills);
    runs.emplace_back(config.fault.seed, std::move(r));
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", json_path.c_str());
      return 1;
    }
    write_json(f, params, n_pes, runs, deterministic, ok);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::printf("bench_serving: FAILED\n");
    return 1;
  }
  std::printf(
      "bench_serving: all runs recovered, books balanced, deterministic\n");
  return 0;
}
