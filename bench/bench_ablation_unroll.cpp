// Ablation A3: the runtime's loop-unrolling optimization (paper §3.3: the
// underlying assembly unrolls the remote load/store loop once nelems
// exceeds a threshold). Lowers the same strided put to actual RV64I+xBGAS
// instruction sequences — rolled and x4-unrolled — and executes both on the
// interpreter, reporting instruction and cycle counts.
//
//   bench_ablation_unroll [--elems 4,8,16,64,256,1024]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"
#include "xbrtime/runtime.hpp"
#include "xbrtime/validation.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> sizes =
      args.get_int_list("elems", {4, 8, 16, 64, 256, 1024});

  std::printf("== Ablation A3: remote-store loop unrolling at the ISA level "
              "(8-byte elements, stride 1) ==\n");

  xbgas::AsciiTable table({"elems", "insts rolled", "insts unrolled",
                           "cycles rolled", "cycles unrolled", "cycle save"});

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, 2));
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    if (pe.rank() == 0) {
      for (const int size : sizes) {
        const auto nelems = static_cast<std::size_t>(size);
        auto* dst = static_cast<std::uint64_t*>(
            xbgas::xbrtime_stage_alloc(nelems * 8));
        auto* src = static_cast<std::uint64_t*>(
            xbgas::xbrtime_stage_alloc(nelems * 8));
        const auto rolled =
            xbgas::isa_put(pe, dst, src, 8, nelems, 1, 1, /*unroll=*/false);
        const auto unrolled =
            xbgas::isa_put(pe, dst, src, 8, nelems, 1, 1, /*unroll=*/true);
        table.add_row(
            {xbgas::AsciiTable::cell(static_cast<long long>(size)),
             xbgas::AsciiTable::cell(
                 static_cast<unsigned long long>(rolled.instructions)),
             xbgas::AsciiTable::cell(
                 static_cast<unsigned long long>(unrolled.instructions)),
             xbgas::AsciiTable::cell(
                 static_cast<unsigned long long>(rolled.cycles)),
             xbgas::AsciiTable::cell(
                 static_cast<unsigned long long>(unrolled.cycles)),
             xbgas::strfmt(
                 "%.1f%%",
                 100.0 * (1.0 - static_cast<double>(unrolled.cycles) /
                                    static_cast<double>(rolled.cycles)))});
        xbgas::xbrtime_stage_free(src);
        xbgas::xbrtime_stage_free(dst);
      }
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_close();
  });

  table.print();
  std::printf("(runtime fast-path model applies the same idea: per-element "
              "issue cost drops past the unroll threshold of %zu elems)\n",
              xbgas::NetCostParams{}.unroll_threshold);
  xbgas::emit_observability(machine, args);
  return 0;
}
