// Figure 4 reproduction: GUPs performance (total and per-PE MOPS) at
// 1/2/4/8 PEs, with verification enabled as in the paper (§5.2-§5.3).
//
//   bench_fig4_gups [--stats] [--pes 1,2,4,8] [--log2-table 21] [--updates N (0 = 4 x table/PEs)]
//                   [--no-verify] [--topology flat] ...
//
// Expected shape (paper Figure 4): total MOPS scales ~linearly to 4 PEs;
// per-PE MOPS peaks at 2 PEs and dips at 8 PEs as the shared fabric
// saturates.

#include <cstdio>

#include "benchlib/gups.hpp"
#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/stats_report.hpp"
#include "benchlib/table.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);

  xbgas::GupsConfig config;
  config.log2_table_entries =
      static_cast<unsigned>(args.get_int("log2-table", 21));
  config.updates_per_pe =
      static_cast<std::uint64_t>(args.get_int("updates", 0));
  config.verify = !args.has("no-verify");

  if (config.updates_per_pe == 0) {
    std::printf("== Figure 4: GUPs performance (table 2^%u entries, "
                "4x-coverage updates, verify=%s) ==\n",
                config.log2_table_entries, config.verify ? "on" : "off");
  } else {
    std::printf("== Figure 4: GUPs performance (table 2^%u entries, %llu "
                "updates/PE, verify=%s) ==\n",
                config.log2_table_entries,
                static_cast<unsigned long long>(config.updates_per_pe),
                config.verify ? "on" : "off");
  }

  xbgas::AsciiTable table({"PEs", "Total MOPS", "MOPS per PE", "GUPS",
                           "sim ms", "errors"});
  for (const int n : xbgas::pe_counts_from_cli(args)) {
    xbgas::Machine machine(xbgas::machine_config_from_cli(args, n));
    const xbgas::GupsResult r = xbgas::run_gups(machine, config);
    if (args.get_bool("stats", false)) {
      std::printf("-- machine statistics, %d PE(s) --\n", n);
      xbgas::print_machine_stats(machine);
    }
    xbgas::emit_observability(machine, args);
    table.add_row({xbgas::AsciiTable::cell(static_cast<long long>(r.n_pes)),
                   xbgas::AsciiTable::cell(r.mops_total),
                   xbgas::AsciiTable::cell(r.mops_per_pe),
                   xbgas::strfmt("%.6f", r.gups),
                   xbgas::AsciiTable::cell(r.seconds * 1e3),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(r.errors))});
  }
  table.print();
  std::printf("(series: \"Total\" and \"Per PE\" correspond to the two bars "
              "of paper Figure 4)\n");
  return 0;
}
