// Write-combining + nbi pipelining stress bench (docs/COLLECTIVES.md,
// docs/OBSERVABILITY.md): two experiments, both self-checking, exits
// nonzero unless every check holds.
//
//   1. GUPs small-put storm: every PE scatters single-word updates
//      round-robin over the other PEs into its own rank-owned stripe of
//      each target's table. Run once with plain blocking puts and once
//      through the write combiner: the tables must checksum identically,
//      the coalesced storm must be at least 2x cheaper in modeled cycles,
//      the rma.coalesced.* counters must show real batching (more enqueued
//      messages than flushes), and a rerun of the coalesced storm must
//      reproduce the cycle count exactly.
//
//   2. Large-message allreduce at scale: blocking ring allreduce vs the
//      chunked nbi ring (reduce-scatter pulls overlap the combine, chunk
//      transfers overlap each other). Both must match the host golden sum;
//      the pipelined schedule must beat the blocking ring.
//
//   bench_gups [--pes 16] [--updates 8192] [--slots 256]
//              [--allreduce-pes 64] [--nelems 65536]
//              [--json BENCH_gups.json] [--trace-out PATH] [--counters json]
//
// Observability is emitted once per configuration (sweep idiom,
// docs/OBSERVABILITY.md): the counters print five times and the trace
// file holds the final (nbi allreduce) run.

#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "collectives/composed.hpp"
#include "collectives/nbi.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "machine/machine.hpp"
#include "xbrtime/nbi.hpp"
#include "xbrtime/runtime.hpp"
#include "xbrtime/wc.hpp"

namespace {

/// Deterministic GUPs update value: pure function of (seed, writer, i).
std::uint64_t gup_val(std::uint64_t seed, int writer, std::size_t i) {
  xbgas::SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(writer) << 32) ^
                        i);
  return rng.next();
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

struct StormResult {
  std::uint64_t max_cycles = 0;  ///< slowest PE's storm span
  std::uint64_t checksum = 0;    ///< fold of every PE's landed table
};

/// One full storm over `n_pes`: `updates` single-word puts per PE,
/// round-robin targets, rank-owned disjoint stripes (bitwise-comparable,
/// race-free). Returns the slowest PE's modeled span and a machine-wide
/// table checksum.
StormResult run_storm(xbgas::MachineConfig config, std::size_t slots,
                      std::size_t updates, std::uint64_t seed, bool coalesce,
                      const xbgas::CliArgs& args) {
  const int n_pes = config.n_pes;
  std::vector<std::uint64_t> spans(static_cast<std::size_t>(n_pes), 0);
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(n_pes), 0);
  xbgas::Machine machine(config);
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    const int me = pe.rank();
    const int n = pe.n_pes();
    const std::size_t table_words = static_cast<std::size_t>(n) * slots;
    auto* table = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(table_words * sizeof(std::uint64_t)));
    for (std::size_t s = 0; s < table_words; ++s) table[s] = 0;
    xbgas::xbrtime_barrier();
    if (coalesce) {
      xbgas::xbr_wc_enable(/*threshold_bytes=*/64, /*capacity_entries=*/64);
    }
    const std::uint64_t t0 = pe.clock().cycles();
    for (std::size_t i = 0; i < updates; ++i) {
      const int target =
          n == 1 ? 0 : (me + 1 + static_cast<int>(i) % (n - 1)) % n;
      const std::size_t slot =
          static_cast<std::size_t>(me) * slots + i % slots;
      std::uint64_t v = gup_val(seed, me, i);
      xbgas::xbr_put_wc(table + slot, &v, 1, 1, target);
    }
    xbgas::xbr_fence();  // drains the combiner and settles modeled time
    spans[static_cast<std::size_t>(me)] = pe.clock().cycles() - t0;
    if (coalesce) xbgas::xbr_wc_disable();
    xbgas::xbrtime_barrier();
    std::uint64_t h = 0;
    for (std::size_t s = 0; s < table_words; ++s) h = fold(h, table[s]);
    sums[static_cast<std::size_t>(me)] = h;
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(table);
    xbgas::xbrtime_close();
  });
  xbgas::emit_observability(machine, args);
  StormResult r;
  for (int p = 0; p < n_pes; ++p) {
    r.max_cycles = std::max(r.max_cycles, spans[static_cast<std::size_t>(p)]);
    r.checksum = fold(r.checksum, sums[static_cast<std::size_t>(p)]);
  }
  return r;
}

struct AllreduceResult {
  std::uint64_t max_cycles = 0;
  bool correct = true;
};

/// One allreduce over `nelems` words on every PE of `config`, blocking ring
/// or chunked-nbi ring, verified elementwise against the host golden sum.
AllreduceResult run_allreduce(xbgas::MachineConfig config, std::size_t nelems,
                              bool nbi, const xbgas::CliArgs& args) {
  const int n_pes = config.n_pes;
  std::vector<std::uint64_t> spans(static_cast<std::size_t>(n_pes), 0);
  std::vector<int> good(static_cast<std::size_t>(n_pes), 0);
  xbgas::Machine machine(config);
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    const int me = pe.rank();
    const int n = pe.n_pes();
    auto* src = static_cast<long*>(
        xbgas::xbrtime_malloc(nelems * sizeof(long)));
    auto* dest = static_cast<long*>(
        xbgas::xbrtime_malloc(nelems * sizeof(long)));
    for (std::size_t j = 0; j < nelems; ++j) {
      src[j] = static_cast<long>((j % 251) + static_cast<std::size_t>(me));
    }
    xbgas::xbrtime_barrier();
    const std::uint64_t t0 = pe.clock().cycles();
    if (nbi) {
      xbgas::CollReq r =
          xbgas::xbr_reduce_all_nbi<xbgas::OpSum>(dest, src, nelems, 1);
      r.wait();
    } else {
      xbgas::reduce_all<xbgas::OpSum>(dest, src, nelems, 1);
    }
    spans[static_cast<std::size_t>(me)] = pe.clock().cycles() - t0;
    bool ok = true;
    for (std::size_t j = 0; j < nelems; ++j) {
      const long want = static_cast<long>(
          (j % 251) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
      ok = ok && dest[j] == want;
    }
    good[static_cast<std::size_t>(me)] = ok ? 1 : 0;
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(dest);
    xbgas::xbrtime_free(src);
    xbgas::xbrtime_close();
  });
  xbgas::emit_observability(machine, args);
  AllreduceResult r;
  for (int p = 0; p < n_pes; ++p) {
    r.max_cycles = std::max(r.max_cycles, spans[static_cast<std::size_t>(p)]);
    r.correct = r.correct && good[static_cast<std::size_t>(p)] == 1;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 16));
  const auto slots = static_cast<std::size_t>(args.get_int("slots", 256));
  const auto updates =
      static_cast<std::size_t>(args.get_int("updates", 8192));
  const int ar_pes = static_cast<int>(args.get_int("allreduce-pes", 64));
  const auto nelems =
      static_cast<std::size_t>(args.get_int("nelems", 65536));
  const std::uint64_t seed = 0x6a95ull;
  bool ok = true;

  std::printf(
      "== GUPs write-combining storm (%d PEs, %zu updates/PE, %zu-slot "
      "stripes) ==\n",
      n_pes, updates, slots);

  xbgas::MachineConfig storm_cfg =
      xbgas::machine_config_from_cli(args, n_pes);
  const StormResult off =
      run_storm(storm_cfg, slots, updates, seed, /*coalesce=*/false, args);
  xbgas::reset_wc_counters();
  const StormResult on =
      run_storm(storm_cfg, slots, updates, seed, /*coalesce=*/true, args);
  const xbgas::WcCounters wc = xbgas::wc_counters();
  const StormResult on2 =
      run_storm(storm_cfg, slots, updates, seed, /*coalesce=*/true, args);

  const double speedup =
      on.max_cycles > 0 ? static_cast<double>(off.max_cycles) /
                              static_cast<double>(on.max_cycles)
                        : 0.0;
  const bool bitwise = on.checksum == off.checksum;
  const bool deterministic = on.max_cycles == on2.max_cycles &&
                             on.checksum == on2.checksum;
  const bool batched = wc.flushes > 0 && wc.messages > wc.flushes;
  std::printf(
      "  blocking %llu cycles   coalesced %llu cycles   speedup %.2fx\n",
      static_cast<unsigned long long>(off.max_cycles),
      static_cast<unsigned long long>(on.max_cycles), speedup);
  std::printf(
      "  combiner: %llu puts -> %llu messages in %llu flushes (%llu "
      "bytes)\n",
      static_cast<unsigned long long>(wc.puts),
      static_cast<unsigned long long>(wc.messages),
      static_cast<unsigned long long>(wc.flushes),
      static_cast<unsigned long long>(wc.bytes));
  std::printf("  bitwise %s   deterministic %s   batched %s\n",
              bitwise ? "OK" : "FAIL", deterministic ? "OK" : "FAIL",
              batched ? "OK" : "FAIL");
  ok = ok && bitwise && deterministic && batched && speedup >= 2.0;

  std::printf(
      "== Large-message allreduce: blocking ring vs chunked-nbi ring "
      "(%d PEs, %zu words) ==\n",
      ar_pes, nelems);

  xbgas::MachineConfig ar_cfg = xbgas::machine_config_from_cli(args, ar_pes);
  ar_cfg.coll_algo = "ring";
  // The net defaults model the paper's single shared bus: at 64 PEs a
  // large-message collective is aggregate-bandwidth-bound and every
  // schedule drains at the same rate (bench_fig4 / bench_scaling
  // characterize that regime). To compare SCHEDULES, provision a
  // full-bisection fabric — aggregate byte rate scaled to the per-link rate
  // times the PE count, light per-message occupancy — unless the user
  // pinned the knobs themselves (--fabric-bpc / --fabric-mpc).
  if (!args.has("fabric-bpc")) {
    ar_cfg.net.fabric_bytes_per_cycle =
        ar_cfg.net.link_bytes_per_cycle * ar_pes;
  }
  if (!args.has("fabric-mpc")) ar_cfg.net.fabric_message_cycles = 4;
  // Room for src + dest + the collective staging accumulator.
  ar_cfg.layout.shared_bytes =
      std::max<std::size_t>(ar_cfg.layout.shared_bytes,
                            4 * nelems * sizeof(long));
  const AllreduceResult blocking =
      run_allreduce(ar_cfg, nelems, /*nbi=*/false, args);
  const AllreduceResult pipelined =
      run_allreduce(ar_cfg, nelems, /*nbi=*/true, args);
  const double ar_speedup =
      pipelined.max_cycles > 0
          ? static_cast<double>(blocking.max_cycles) /
                static_cast<double>(pipelined.max_cycles)
          : 0.0;
  std::printf(
      "  blocking ring %llu cycles   nbi pipelined %llu cycles   speedup "
      "%.2fx\n",
      static_cast<unsigned long long>(blocking.max_cycles),
      static_cast<unsigned long long>(pipelined.max_cycles), ar_speedup);
  std::printf("  correct %s   pipelined wins %s\n",
              blocking.correct && pipelined.correct ? "OK" : "FAIL",
              pipelined.max_cycles < blocking.max_cycles ? "OK" : "FAIL");
  ok = ok && blocking.correct && pipelined.correct &&
       pipelined.max_cycles < blocking.max_cycles;

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"gups\",\n");
    std::fprintf(f, "  \"gups\": {\n");
    std::fprintf(f, "    \"n_pes\": %d,\n", n_pes);
    std::fprintf(f, "    \"updates_per_pe\": %zu,\n", updates);
    std::fprintf(f, "    \"cycles_blocking\": %llu,\n",
                 static_cast<unsigned long long>(off.max_cycles));
    std::fprintf(f, "    \"cycles_coalesced\": %llu,\n",
                 static_cast<unsigned long long>(on.max_cycles));
    std::fprintf(f, "    \"speedup\": %.3f,\n", speedup);
    std::fprintf(f, "    \"bitwise_identical\": %s,\n",
                 bitwise ? "true" : "false");
    std::fprintf(f, "    \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(
        f,
        "    \"combiner\": {\"puts\": %llu, \"enqueued\": %llu, "
        "\"flushes\": %llu, \"messages\": %llu, \"bytes\": %llu}\n",
        static_cast<unsigned long long>(wc.puts),
        static_cast<unsigned long long>(wc.enqueued),
        static_cast<unsigned long long>(wc.flushes),
        static_cast<unsigned long long>(wc.messages),
        static_cast<unsigned long long>(wc.bytes));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"allreduce\": {\n");
    std::fprintf(f, "    \"n_pes\": %d,\n", ar_pes);
    std::fprintf(f, "    \"nelems\": %zu,\n", nelems);
    std::fprintf(f, "    \"algo\": \"ring\",\n");
    std::fprintf(f, "    \"cycles_blocking\": %llu,\n",
                 static_cast<unsigned long long>(blocking.max_cycles));
    std::fprintf(f, "    \"cycles_nbi_pipelined\": %llu,\n",
                 static_cast<unsigned long long>(pipelined.max_cycles));
    std::fprintf(f, "    \"speedup\": %.3f,\n", ar_speedup);
    std::fprintf(f, "    \"correct\": %s\n",
                 blocking.correct && pipelined.correct ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"all_ok\": %s\n", ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::printf("bench_gups: FAILED\n");
    return 1;
  }
  std::printf(
      "bench_gups: coalescing >= 2x, pipelined allreduce wins, all "
      "bitwise-deterministic\n");
  return 0;
}
