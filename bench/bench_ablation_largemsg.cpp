// Ablation A6: binomial tree vs segmented ring (pipelined) broadcast across
// message sizes — the paper's §7 future-work item ("algorithms optimized
// for larger message sizes") demonstrated on two fabrics:
//  - bus (the default shared-fabric profile): pipelining cannot win — there
//    is only one link, so broadcast is bandwidth-bound either way and the
//    ring's extra steps only add synchronization;
//  - net (switched fabric, all links concurrent): the classic crossover —
//    the tree wins small messages (short critical path), the ring wins
//    large ones by keeping every link busy with segments.
//
//   bench_ablation_largemsg [--pes 8] [--sizes 16,256,4096,65536]
//                           [--segments 0 (heuristic)]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/ring.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("pes", 8));
  const std::vector<int> sizes =
      args.get_int_list("sizes", {16, 256, 4096, 65536});
  const auto segments = static_cast<std::size_t>(args.get_int("segments", 0));
  const int reps = static_cast<int>(args.get_int("reps", 3));

  std::printf("== Ablation A6: binomial tree vs segmented ring broadcast "
              "(%d PEs, modeled cycles) ==\n", n);

  xbgas::AsciiTable table({"elems", "tree (bus)", "ring (bus)", "tree (net)",
                           "ring (net)", "net ring/tree"});
  for (const int size : sizes) {
    const auto nelems = static_cast<std::size_t>(size);
    std::uint64_t cycles[2][2] = {};  // [fabric][algorithm]
    for (int fabric = 0; fabric < 2; ++fabric) {
      xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
      if (fabric == 1) {  // switched network: links run concurrently
        config.net.fabric_message_cycles = 0;
        config.net.fabric_bytes_per_cycle = 1e12;
      }
      xbgas::Machine machine(config);

      std::uint64_t tree_cycles = 0, ring_cycles = 0;
      machine.run([&](xbgas::PeContext& pe) {
      xbgas::xbrtime_init();
      auto* buf =
          static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
      // src also lives in the arena so the cache model charges both
      // algorithms the same real memory costs.
      auto* src =
          static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
      for (std::size_t i = 0; i < nelems; ++i) src[i] = 7;
      xbgas::xbrtime_barrier();
      // Warm passes: each algorithm has a distinct forwarding set (remote
      // writes don't warm the receiver's cache), so run both once.
      xbgas::broadcast(buf, src, nelems, 1, 0);
      xbgas::xbrtime_barrier();
      xbgas::ring_broadcast(buf, src, nelems, 1, 0, xbgas::world_comm(),
                            segments);
      xbgas::xbrtime_barrier();

      std::uint64_t t_tree = 0, t_ring = 0;
      for (int r = 0; r < reps; ++r) {
        const std::uint64_t t0 = pe.clock().cycles();
        xbgas::broadcast(buf, src, nelems, 1, 0);
        xbgas::xbrtime_barrier();
        const std::uint64_t t1 = pe.clock().cycles();
        xbgas::ring_broadcast(buf, src, nelems, 1, 0,
                              xbgas::world_comm(), segments);
        xbgas::xbrtime_barrier();
        const std::uint64_t t2 = pe.clock().cycles();
        t_tree += t1 - t0;
        t_ring += t2 - t1;
      }
        if (pe.rank() == 0) {
          tree_cycles = t_tree / static_cast<std::uint64_t>(reps);
          ring_cycles = t_ring / static_cast<std::uint64_t>(reps);
        }
        xbgas::xbrtime_barrier();
        xbgas::xbrtime_free(src);
        xbgas::xbrtime_free(buf);
        xbgas::xbrtime_close();
      });
      xbgas::emit_observability(machine, args);
      cycles[fabric][0] = tree_cycles;
      cycles[fabric][1] = ring_cycles;
    }

    table.add_row(
        {xbgas::AsciiTable::cell(static_cast<long long>(size)),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(cycles[0][0])),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(cycles[0][1])),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(cycles[1][0])),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(cycles[1][1])),
         xbgas::strfmt("%.2f", cycles[1][0] > 0
                                   ? static_cast<double>(cycles[1][1]) /
                                         static_cast<double>(cycles[1][0])
                                   : 0.0)});
  }
  table.print();
  std::printf("(ring/tree < 1 marks where pipelining wins; the crossover is "
              "the §7 motivation for size-adaptive algorithm selection)\n");
  return 0;
}
