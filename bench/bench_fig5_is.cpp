// Figure 5 reproduction: NAS Integer Sort performance (total and per-PE
// MOPS) at 1/2/4/8 PEs (§5.2-§5.3).
//
//   bench_fig5_is [--stats] [--pes 1,2,4,8] [--class S|W|A|B] [--iterations 10]
//
// The paper runs class B; the default here is class W so the sweep finishes
// in seconds — pass --class B for the paper's size. Expected shape: total
// MOPS ~linear to 4 PEs with consistent per-PE MOPS, then a ~25% per-PE
// drop at 8 PEs.

#include <cstdio>
#include <string>

#include "benchlib/nasis.hpp"
#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/stats_report.hpp"
#include "benchlib/table.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

namespace {

xbgas::IsClass class_from_name(const std::string& name) {
  if (name == "S") return xbgas::IsClass::kS;
  if (name == "W") return xbgas::IsClass::kW;
  if (name == "A") return xbgas::IsClass::kA;
  if (name == "B") return xbgas::IsClass::kB;
  throw xbgas::Error("unknown IS class: " + name + " (use S, W, A or B)");
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);

  xbgas::IsConfig config;
  config.cls = class_from_name(args.get("class", "W"));
  config.iterations = static_cast<int>(args.get_int("iterations", 10));

  const auto params = xbgas::is_class_params(config.cls);
  std::printf("== Figure 5: NAS IS class %s (%llu keys, max key %d, %d "
              "iterations) ==\n",
              xbgas::is_class_name(config.cls),
              static_cast<unsigned long long>(params.total_keys),
              params.max_key, config.iterations);

  xbgas::AsciiTable table(
      {"PEs", "Total MOPS", "MOPS per PE", "sim ms", "verified"});
  for (const int n : xbgas::pe_counts_from_cli(args)) {
    xbgas::MachineConfig mc = xbgas::machine_config_from_cli(args, n);
    mc.layout.shared_bytes = std::max(
        mc.layout.shared_bytes, xbgas::is_shared_bytes_needed(config.cls, n));
    xbgas::Machine machine(mc);
    const xbgas::IsResult r = xbgas::run_is(machine, config);
    if (args.get_bool("stats", false)) {
      std::printf("-- machine statistics, %d PE(s) --\n", n);
      xbgas::print_machine_stats(machine);
    }
    xbgas::emit_observability(machine, args);
    table.add_row({xbgas::AsciiTable::cell(static_cast<long long>(r.n_pes)),
                   xbgas::AsciiTable::cell(r.mops_total),
                   xbgas::AsciiTable::cell(r.mops_per_pe),
                   xbgas::AsciiTable::cell(r.seconds * 1e3),
                   r.verified ? "yes" : "NO"});
  }
  table.print();
  std::printf("(series: \"Total\" and \"Per PE\" correspond to the two bars "
              "of paper Figure 5)\n");
  return 0;
}
