// Partition-tolerance chaos soak (docs/RESILIENCE.md): drive deterministic
// Zipfian serving traffic while the fault plan scripts *persistent link
// faults* — single dead links and 2-way network partitions — mid-traffic.
// Retries exhaust against the dead links, escalate as PeUnreachableError,
// and feed the suspect -> agree -> shrink machinery: the majority component
// evicts the unreachable ranks by quorum and keeps serving; minority ranks
// unwind with PartitionedError. Exits nonzero unless every seeded run
//
//   * recovers      — unreachability was observed, an agreement fired, and
//                     the machine shrank (alive < world);
//   * holds quorum  — the surviving component is a strict majority, and for
//                     partition plans the failed set is exactly the scripted
//                     minority (split-brain safety: nobody on the majority
//                     side is ever evicted by a minority verdict);
//   * makes progress— every survivor finishes all post-split batches, its
//                     books balance (requests == served + failed), the
//                     aggregate ledger balances, and a golden allreduce over
//                     the survivor team verifies against the closed form;
//   * replays       — rerunning the identical seed reproduces bit-identical
//                     accounting (serving ledger + eviction set + agreement
//                     and unreachability counts).
//
//   Soak:      bench_partition --pes 64 --seeds 6 [--seed-base 1]
//   Scripted:  bench_partition --pes 64 --fault-partition 48-63@200000
//   JSON:      add --json BENCH_partition.json
//
//   --pes N            PEs per machine (default 64; the soak is sized for
//                      64-256)
//   --batches N        request batches per PE (default 12)
//   --ops-per-batch N  requests per batch per PE (default 32)
//   --keys N           keys in the table (default 2048)
//   --stripes N        hot-counter stripes (default 64)
//   --put-pct / --incr-pct / --zipf-s   traffic mix (defaults 20/10/0.99)
//   --seeds N          soak mode: N seeded plans (odd seeds partition a
//                      contiguous minority group, even seeds kill 2-4
//                      point-to-point links), each run twice
//   --seed-base N      first soak seed (default 1)
//   --json PATH        write the report as JSON
//
// Standard machine/fault flags (benchlib/options.hpp) override everything;
// with no --seeds and no scripted faults the bench runs one clean baseline.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/options.hpp"
#include "benchlib/zipf.hpp"
#include "collectives/policy.hpp"
#include "common/cli.hpp"
#include "machine/machine.hpp"
#include "serving/client.hpp"
#include "trace/collect.hpp"
#include "xbrtime/runtime.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Activation window: late enough that the symmetric setup (init + store
/// construction + baseline checkpoint) is over and a pre-split traffic
/// phase exists, early enough that most of the batch schedule still runs on
/// the shrunken roster.
std::uint64_t derive_at(std::uint64_t& s) { return 150'000 + splitmix64(s) % 350'000; }

/// Odd seeds: one 2-way partition splitting off a contiguous minority group
/// of n/8 .. n/4 ranks. Even seeds: 2-4 distinct point-to-point links
/// scripted down. All faults are persistent (no scripted heal) — this soak
/// is about eviction, not absorption; healing is covered by the unit tests.
void derive_plan(std::uint64_t seed, int n_pes, xbgas::FaultConfig& fc,
                 std::string& plan, std::vector<int>& minority) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  const auto n = static_cast<std::uint64_t>(n_pes);
  if (seed % 2 == 1) {
    const auto size = static_cast<int>(n / 8 + splitmix64(s) % (n / 8 + 1));
    const int lo = static_cast<int>(splitmix64(s) %
                                    static_cast<std::uint64_t>(n_pes - size + 1));
    xbgas::PartitionSpec p;
    p.lo = lo;
    p.hi = lo + size - 1;
    p.at = derive_at(s);
    fc.partitions.push_back(p);
    for (int r = p.lo; r <= p.hi; ++r) minority.push_back(r);
    plan = "partition " + std::to_string(p.lo) + "-" + std::to_string(p.hi);
    plan += "@" + std::to_string(p.at);
  } else {
    const int n_links = 2 + static_cast<int>(splitmix64(s) % 3);
    for (int i = 0; i < n_links; ++i) {
      xbgas::LinkSpec l;
      for (;;) {
        l.a = static_cast<int>(splitmix64(s) % n);
        l.b = static_cast<int>(splitmix64(s) % n);
        if (l.a == l.b) continue;
        if (l.a > l.b) std::swap(l.a, l.b);
        bool fresh = true;
        for (const xbgas::LinkSpec& seen : fc.links) {
          fresh &= seen.a != l.a || seen.b != l.b;
        }
        if (fresh) break;
      }
      l.mode = xbgas::LinkFaultMode::kDown;
      l.at = derive_at(s);
      fc.links.push_back(l);
      plan += plan.empty() ? "link " : ",";
      plan += std::to_string(l.a) + "-" + std::to_string(l.b);
      plan += "@" + std::to_string(l.at);
    }
  }
}

struct SeedResult {
  bool region_ok = false;
  bool recovered = false;  ///< unreachability seen, agreement fired, shrank
  bool quorum_ok = false;  ///< majority survived; partition evicted exactly
                           ///< the scripted minority
  bool progress_ok = false;  ///< survivors finished, books + golden reduce
  std::uint64_t unreachable = 0;
  std::uint64_t agreements = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t link_down_drops = 0;
  int pes_alive = 0;
  std::vector<int> evicted;
  xbgas::ServingCounters totals;
  std::string plan;

  bool ok(bool expect_faults) const {
    return region_ok && progress_ok &&
           (!expect_faults || (recovered && quorum_ok));
  }
};

/// Everything that must replay bit-identically when the seed is rerun.
struct AccountingKey {
  std::uint64_t v[8];
  std::vector<int> evicted;
  bool operator==(const AccountingKey& o) const {
    for (int i = 0; i < 8; ++i) {
      if (v[i] != o.v[i]) return false;
    }
    return evicted == o.evicted;
  }
};

AccountingKey accounting_key(const SeedResult& r) {
  return AccountingKey{{r.totals.requests, r.totals.served, r.totals.failed,
                        r.totals.retries, r.totals.failovers, r.unreachable,
                        r.agreements, r.shrinks},
                       r.evicted};
}

struct BenchParams {
  xbgas::ServingConfig serving;
  xbgas::ServingMix mix;
  int batches = 12;
  int ops_per_batch = 32;
  std::uint64_t workload_seed = 42;
};

SeedResult run_once(xbgas::MachineConfig config, const BenchParams& params,
                    const std::vector<int>& minority) {
  const int n_pes = config.n_pes;
  xbgas::serving_counters_reset();

  struct PerRank {
    std::uint64_t post_requests = 0;  ///< requests after the first failover
    bool books = false;
    bool reduced = false;  ///< golden allreduce over the final team verified
    bool finished = false;
  };
  std::vector<PerRank> per(static_cast<std::size_t>(n_pes));

  xbgas::Machine machine(config);
  const auto body = [&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* red = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(2 * sizeof(std::uint64_t)));
    xbgas::KvStore store(params.serving);
    xbgas::ServingClient client(store, params.serving);
    xbgas::ServingTraffic traffic(params.workload_seed, pe.rank(),
                                  params.serving.n_keys, params.mix);
    PerRank& mine = per[static_cast<std::size_t>(pe.rank())];
    for (int b = 0; b < params.batches; ++b) {
      // A failover can fire inside execute() (first-hand escalation) or
      // inside end_batch() (poisoned rendezvous); the ledger sees both.
      const bool post = client.counters().failovers > 0;
      for (int i = 0; i < params.ops_per_batch; ++i) {
        (void)client.execute(traffic.next());
        if (post) ++mine.post_requests;
      }
      (void)client.end_batch();
    }
    mine.books = client.counters().books_balance();

    // Quorum-side progress in the strongest form: a golden allreduce over
    // whatever roster survived, verified against the closed form.
    red[0] = static_cast<std::uint64_t>(pe.rank() + 1);
    std::uint64_t expect = 0;
    if (client.team() != nullptr) {
      xbgas::dispatch_reduce_all<xbgas::OpSum>(red + 1, red, 1, 1,
                                               *client.team());
      for (const int wr : client.team()->members()) {
        expect += static_cast<std::uint64_t>(wr + 1);
      }
    } else {
      xbgas::dispatch_reduce_all<xbgas::OpSum>(red + 1, red, 1, 1);
      expect = static_cast<std::uint64_t>(n_pes) *
               static_cast<std::uint64_t>(n_pes + 1) / 2;
    }
    mine.reduced = red[1] == expect;

    client.finish();
    mine.finished = true;
    // No xbrtime_close(): after an eviction the world barrier is poisoned.
  };

  SeedResult res;
  res.region_ok = true;
  try {
    machine.run(body);
  } catch (const xbgas::SpmdRegionError& e) {
    res.region_ok = false;
    std::printf("unrecovered region: %s\n", e.what());
  }

  const xbgas::CounterRegistry counters = xbgas::collect_counters(machine);
  res.unreachable = counters.get("fault.injected.unreachable").value();
  res.agreements = counters.get("recovery.agreements").value();
  res.shrinks = counters.get("recovery.shrinks").value();
  res.link_down_drops = counters.get("fault.injected.link_down").value();
  res.pes_alive = machine.n_alive();
  res.evicted = machine.failed_ranks();
  res.totals = xbgas::serving_counters_snapshot();

  const bool expect_faults =
      !config.fault.links.empty() || !config.fault.partitions.empty();
  res.recovered = res.region_ok && res.unreachable >= 1 &&
                  res.agreements >= 1 && res.shrinks >= 1 &&
                  res.pes_alive < n_pes;

  // Quorum safety. For a scripted partition the eviction set must be
  // *exactly* the scripted minority: one rank more would mean a minority
  // verdict reached the majority side, one fewer would mean the split was
  // never fully resolved. For point-to-point link plans any eviction must
  // be an endpoint of a scripted-down link.
  res.quorum_ok = res.pes_alive > n_pes / 2;
  if (!minority.empty()) {
    res.quorum_ok = res.quorum_ok && res.evicted == minority;
  } else {
    for (const int r : res.evicted) {
      bool endpoint = false;
      for (const xbgas::LinkSpec& l : config.fault.links) {
        endpoint |= r == l.a || r == l.b;
      }
      res.quorum_ok = res.quorum_ok && endpoint;
    }
  }

  bool survivors_ok = true;
  std::uint64_t post_total = 0;
  for (int r = 0; r < n_pes; ++r) {
    const PerRank& pr = per[static_cast<std::size_t>(r)];
    if (!machine.alive(r)) continue;
    survivors_ok = survivors_ok && pr.finished && pr.books && pr.reduced;
    post_total += pr.post_requests;
  }
  res.progress_ok = res.region_ok && survivors_ok &&
                    res.totals.books_balance() &&
                    (!expect_faults || post_total > 0);
  if (!res.ok(expect_faults)) std::printf("%s\n", machine.health().c_str());
  return res;
}

void print_result(const std::string& label, const SeedResult& r, int n_pes,
                  bool expect_faults) {
  std::string evicted;
  for (const int e : r.evicted) {
    evicted += evicted.empty() ? "" : ",";
    evicted += std::to_string(e);
  }
  std::printf(
      "%s  unreachable %llu  agreements %llu  shrinks %llu  alive %d/%d  "
      "evicted [%s]  req %llu  served %llu  failed %llu  %s\n",
      label.c_str(), static_cast<unsigned long long>(r.unreachable),
      static_cast<unsigned long long>(r.agreements),
      static_cast<unsigned long long>(r.shrinks), r.pes_alive, n_pes,
      evicted.c_str(), static_cast<unsigned long long>(r.totals.requests),
      static_cast<unsigned long long>(r.totals.served),
      static_cast<unsigned long long>(r.totals.failed),
      r.ok(expect_faults) ? "OK" : "FAIL");
}

void write_json(std::FILE* f, const BenchParams& params, int n_pes,
                const std::vector<std::pair<std::uint64_t, SeedResult>>& runs,
                const std::vector<bool>& deterministic, bool all_ok) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"partition\",\n");
  std::fprintf(f, "  \"n_pes\": %d,\n", n_pes);
  std::fprintf(f, "  \"batches\": %d,\n", params.batches);
  std::fprintf(f, "  \"ops_per_batch\": %d,\n", params.ops_per_batch);
  std::fprintf(f, "  \"n_keys\": %zu,\n", params.serving.n_keys);
  std::fprintf(f, "  \"zipf_s\": %.3f,\n", params.mix.zipf_s);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SeedResult& r = runs[i].second;
    std::string evicted;
    for (const int e : r.evicted) {
      evicted += evicted.empty() ? "" : ",";
      evicted += std::to_string(e);
    }
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"seed\": %llu,\n",
                 static_cast<unsigned long long>(runs[i].first));
    std::fprintf(f, "      \"plan\": \"%s\",\n", r.plan.c_str());
    std::fprintf(f, "      \"unreachable\": %llu,\n",
                 static_cast<unsigned long long>(r.unreachable));
    std::fprintf(f, "      \"agreements\": %llu,\n",
                 static_cast<unsigned long long>(r.agreements));
    std::fprintf(f, "      \"shrinks\": %llu,\n",
                 static_cast<unsigned long long>(r.shrinks));
    std::fprintf(f, "      \"link_down_drops\": %llu,\n",
                 static_cast<unsigned long long>(r.link_down_drops));
    std::fprintf(f, "      \"alive\": %d,\n", r.pes_alive);
    std::fprintf(f, "      \"evicted\": [%s],\n", evicted.c_str());
    std::fprintf(f, "      \"recovered\": %s,\n",
                 r.recovered ? "true" : "false");
    std::fprintf(f, "      \"quorum_ok\": %s,\n",
                 r.quorum_ok ? "true" : "false");
    std::fprintf(f, "      \"progress_ok\": %s,\n",
                 r.progress_ok ? "true" : "false");
    std::fprintf(f, "      \"deterministic\": %s,\n",
                 (i < deterministic.size() && deterministic[i]) ? "true"
                                                                : "false");
    std::fprintf(
        f,
        "      \"accounting\": {\"requests\": %llu, \"served\": %llu, "
        "\"failed\": %llu, \"retries\": %llu, \"failovers\": %llu}\n",
        static_cast<unsigned long long>(r.totals.requests),
        static_cast<unsigned long long>(r.totals.served),
        static_cast<unsigned long long>(r.totals.failed),
        static_cast<unsigned long long>(r.totals.retries),
        static_cast<unsigned long long>(r.totals.failovers));
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"all_ok\": %s\n", all_ok ? "true" : "false");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 64));
  const int n_seeds = static_cast<int>(args.get_int("seeds", 0));
  const auto seed_base =
      static_cast<std::uint64_t>(args.get_int("seed-base", 1));

  BenchParams params;
  params.batches = static_cast<int>(args.get_int("batches", 12));
  params.ops_per_batch = static_cast<int>(args.get_int("ops-per-batch", 32));
  params.workload_seed =
      static_cast<std::uint64_t>(args.get_int("workload-seed", 42));
  params.serving.n_keys =
      static_cast<std::size_t>(args.get_int("keys", 2048));
  params.serving.hot_stripes =
      static_cast<std::size_t>(args.get_int("stripes", 64));
  params.mix.put_pct = static_cast<int>(args.get_int("put-pct", 20));
  params.mix.incr_pct = static_cast<int>(args.get_int("incr-pct", 10));
  params.mix.zipf_s = args.get_double("zipf-s", 0.99);
  xbgas::validate_serving_config(params.serving);

  std::printf(
      "== Partition chaos soak: persistent link faults and 2-way splits "
      "under serving traffic (%d PEs, %d batches x %d ops, %zu keys) ==\n",
      n_pes, params.batches, params.ops_per_batch, params.serving.n_keys);

  std::vector<std::pair<std::uint64_t, SeedResult>> runs;
  std::vector<bool> deterministic;
  bool ok = true;

  if (n_seeds > 0) {
    for (int i = 0; i < n_seeds; ++i) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      xbgas::MachineConfig config =
          xbgas::machine_config_from_cli(args, n_pes);
      config.fault.seed = seed;
      std::string plan;
      std::vector<int> minority;
      derive_plan(seed, n_pes, config.fault, plan, minority);
      BenchParams seed_params = params;
      seed_params.workload_seed = seed;

      SeedResult r = run_once(config, seed_params, minority);
      r.plan = plan;
      // Rerun the identical seed: eviction set and every ledger entry must
      // replay bit-identically regardless of host scheduling.
      const SeedResult r2 = run_once(config, seed_params, minority);
      const bool det = accounting_key(r) == accounting_key(r2);
      deterministic.push_back(det);
      if (!det) {
        std::printf("seed %llu: NONDETERMINISTIC accounting across reruns\n",
                    static_cast<unsigned long long>(seed));
      }
      ok = ok && r.ok(/*expect_faults=*/true) && det;
      print_result("seed " + std::to_string(seed) + "  plan " + r.plan, r,
                   n_pes, /*expect_faults=*/true);
      runs.emplace_back(seed, std::move(r));
    }
  } else {
    xbgas::MachineConfig config =
        xbgas::machine_config_from_cli(args, n_pes);
    const bool expect_faults =
        !config.fault.links.empty() || !config.fault.partitions.empty();
    // A scripted --fault-partition names the minority explicitly.
    std::vector<int> minority;
    for (const xbgas::PartitionSpec& p : config.fault.partitions) {
      for (int r = p.lo; r <= p.hi; ++r) minority.push_back(r);
    }
    std::sort(minority.begin(), minority.end());
    SeedResult r = run_once(config, params, minority);
    r.plan = expect_faults ? "scripted" : "none";
    deterministic.push_back(true);
    ok = ok && r.ok(expect_faults);
    print_result("scripted  plan " + r.plan, r, n_pes, expect_faults);
    runs.emplace_back(config.fault.seed, std::move(r));
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot write %s\n", json_path.c_str());
      return 1;
    }
    write_json(f, params, n_pes, runs, deterministic, ok);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) {
    std::printf("bench_partition: FAILED\n");
    return 1;
  }
  std::printf(
      "bench_partition: every split evicted by quorum, survivors verified, "
      "deterministic\n");
  return 0;
}
