// Ablation A7: locality-aware two-level broadcast (paper §7: "location
// aware communication optimization using the xBGAS OLB") vs the flat
// binomial tree, on a cluster fabric (cheap on-node links, expensive
// node-boundary crossings — the structure OLB object IDs expose). The flat
// tree with a node-aligned root already behaves hierarchically (recursive
// halving sends far-first on sequential ranks, §4.3); the win appears for
// unaligned roots and non-power-of-two node counts, where the flat tree
// crosses boundaries at several stages.
//
//   bench_ablation_hierarchical [--pes 8] [--group 4] [--remote-hops 40]
//                               [--elems 256]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/hierarchy.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("pes", 8));
  const int group = static_cast<int>(args.get_int("group", 4));
  const int remote_hops = static_cast<int>(args.get_int("remote-hops", 40));
  const auto nelems = static_cast<std::size_t>(args.get_int("elems", 256));

  std::printf("== Ablation A7: flat binomial vs locality-aware two-level "
              "broadcast (%d PEs, nodes of %d, boundary = %d hops) ==\n",
              n, group, remote_hops);

  xbgas::AsciiTable table({"root", "flat tree", "two-level", "speedup"});
  for (int root = 0; root < n; ++root) {
    xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
    config.topology_name = xbgas::strfmt("cluster%dx%d", group, remote_hops);
    config.net.per_hop_cycles = 200;  // boundary crossings dominate
    xbgas::Machine machine(config);

    std::uint64_t flat_cycles = 0, hier_cycles = 0;
    machine.run([&](xbgas::PeContext& pe) {
      xbgas::xbrtime_init();
      auto* buf =
          static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
      auto* src =
          static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
      for (std::size_t i = 0; i < nelems; ++i) src[i] = 11;
      xbgas::xbrtime_barrier();
      // Warm both forwarding sets.
      xbgas::broadcast(buf, src, nelems, 1, root);
      xbgas::xbrtime_barrier();
      xbgas::hierarchical_broadcast(buf, src, nelems, 1, root, group);

      const std::uint64_t t0 = pe.clock().cycles();
      xbgas::broadcast(buf, src, nelems, 1, root);
      xbgas::xbrtime_barrier();
      const std::uint64_t t1 = pe.clock().cycles();
      xbgas::hierarchical_broadcast(buf, src, nelems, 1, root, group);
      xbgas::xbrtime_barrier();
      const std::uint64_t t2 = pe.clock().cycles();
      if (pe.rank() == 0) {
        flat_cycles = t1 - t0;
        hier_cycles = t2 - t1;
      }
      xbgas::xbrtime_barrier();
      xbgas::xbrtime_free(src);
      xbgas::xbrtime_free(buf);
      xbgas::xbrtime_close();
    });
    xbgas::emit_observability(machine, args);

    table.add_row(
        {xbgas::AsciiTable::cell(static_cast<long long>(root)),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(flat_cycles)),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(hier_cycles)),
         xbgas::strfmt("%.2fx", hier_cycles > 0
                                    ? static_cast<double>(flat_cycles) /
                                          static_cast<double>(hier_cycles)
                                    : 0.0)});
  }
  table.print();
  std::printf("(speedup > 1: the two-level scheme wins; node-aligned roots "
              "are where the flat tree is already implicitly hierarchical)\n");
  return 0;
}
