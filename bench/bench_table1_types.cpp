// Table 1 reproduction: the xBGAS matched type names & types — the 24
// TYPENAME <-> TYPE pairs for which the runtime generates explicit typed
// entry points (put/get/broadcast/reduce_*/scatter/gather).

#include <cstdio>

#include "benchlib/table.hpp"
#include "xbrtime/types.hpp"

int main() {
  std::printf("== Table 1: xBGAS matched type names & types ==\n");
  xbgas::AsciiTable table({"TYPENAME", "TYPE"});
  for (int i = 0; i < xbgas::kNumTypedNames; ++i) {
    table.add_row({xbgas::typed_names()[i], xbgas::typed_ctypes()[i]});
  }
  table.print();
  std::printf("Typed entry points generated per TYPENAME: put, get, put_nb, "
              "get_nb, broadcast, reduce_{sum,prod,min,max}, scatter, gather"
              " (+ reduce_{and,or,xor} for the 21 integer types)\n");
  return 0;
}
