// OSU-style collective latency sweep on cluster topologies (paper §7's
// location-aware optimization, generalized): for every (PE count, message
// size, collective kind) the sweep measures every schedule candidate —
// flat k-nomial trees at radices {2,4,8}, segmented rings, and the
// multi-level hierarchical engine — then reports the flat-binomial
// baseline, the per-family bests, the analytic-model pick, and the tuned
// (measured-argmin) pick. BENCH_osu.json in the repo root is a committed
// run; scripts/check.sh gates it (tuned <= model everywhere, hierarchy
// beats the flat tree at large messages on the biggest machine).
//
//   bench_osu_sweep [--pes 16,64,256] [--sizes 128,1024,8192,16384]
//                   [--per-hop 40] [--json PATH] [--tune-table PATH]
//
// --tune-table merges every PE count's winners into one table loadable
// via --coll-tune-table on any binary in the repo.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/tuner.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace {

/// The cluster shape for a PE count: two boundary levels when 16 divides n
/// (pairs-of-8 inside nodes of 16 would not divide 16 itself, so use
/// 4-within-16), else a single node boundary.
std::string topology_for(int n) {
  if (n % 16 == 0 && n > 16) return "cluster4x8_16x64";
  if (n % 4 == 0 && n > 4) return "cluster4x32";
  throw xbgas::Error("bench_osu_sweep: --pes entries must be multiples of 4, got " +
                     std::to_string(n));
}

struct OsuRow {
  xbgas::CollKind kind;
  std::size_t nelems = 0;
  std::size_t bytes = 0;
  std::uint64_t flat_tree = 0;  ///< binomial (radix-2) flat tree
  std::uint64_t ring = 0;       ///< best ring candidate
  std::uint64_t hier = 0;       ///< best hierarchical candidate (0: none)
  std::uint64_t model = 0;      ///< the alpha-beta model's pick, measured
  std::uint64_t tuned = 0;      ///< measured argmin over all candidates
  xbgas::TuneCandidate winner;
};

bool same_candidate(const xbgas::TuneCandidate& a, xbgas::CollAlgo algo,
                    int radix, std::size_t chunk) {
  return a.algo == algo && a.radix == radix && a.chunk == chunk;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {16, 64, 256});
  std::vector<std::size_t> sizes;
  for (const int s : args.get_int_list("sizes", {128, 1024, 8192, 16384})) {
    sizes.push_back(static_cast<std::size_t>(s));
  }
  const std::string json_path = args.get("json", "");
  const std::string table_path = args.get("tune-table", "");

  xbgas::TuneTable merged;
  std::string json = "{\n  \"bench\": \"osu_sweep\",\n  \"machines\": [\n";

  for (std::size_t mi = 0; mi < pes.size(); ++mi) {
    const int n = pes[mi];
    xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
    config.topology_name = topology_for(n);
    // Slim segments so the 256-PE point stays laptop-friendly.
    if (!args.has("shared-mb")) config.layout.shared_bytes = 1 << 20;
    if (!args.has("private-mb")) config.layout.private_bytes = 64 * 1024;
    // Boundary crossings must cost more than on-node hops for locality to
    // be worth exploiting (the premise of the cluster fabric).
    config.net.per_hop_cycles =
        static_cast<std::uint64_t>(args.get_int("per-hop", 40));

    std::printf("== OSU sweep: %d PEs on %s ==\n", n,
                config.topology_name.c_str());

    const std::vector<xbgas::TuneCandidate> cands =
        xbgas::default_tune_candidates(config);
    std::vector<xbgas::TuneMeasurement> measurements;
    const xbgas::TuneTable table =
        xbgas::build_tune_table(config, sizes, cands, &measurements);
    for (const xbgas::TuneEntry& e : table.entries()) merged.insert(e);

    // The model's pick per point, for the tuned-vs-model comparison.
    const xbgas::CollectivePolicy model(config);

    std::map<std::pair<int, std::size_t>, OsuRow> rows;
    for (const xbgas::TuneMeasurement& m : measurements) {
      OsuRow& row = rows[{static_cast<int>(m.kind), m.nelems}];
      row.kind = m.kind;
      row.nelems = m.nelems;
      row.bytes = m.bytes;
      if (same_candidate(m.cand, xbgas::CollAlgo::kTree, 2, 0)) {
        row.flat_tree = m.cycles;
      }
      if (m.cand.algo == xbgas::CollAlgo::kRing &&
          (row.ring == 0 || m.cycles < row.ring)) {
        row.ring = m.cycles;
      }
      if (m.cand.algo == xbgas::CollAlgo::kHier &&
          (row.hier == 0 || m.cycles < row.hier)) {
        row.hier = m.cycles;
      }
      if (row.tuned == 0 || m.cycles < row.tuned) {
        row.tuned = m.cycles;
        row.winner = m.cand;
      }
      const xbgas::CollDecision d =
          model.decide(m.kind, n, m.nelems, sizeof(long));
      if (same_candidate(m.cand, d.algo, d.radix, d.chunk)) {
        row.model = m.cycles;
      }
    }

    xbgas::AsciiTable out({"kind", "bytes", "flat tree", "ring", "hier",
                           "model", "tuned", "winner"});
    json += xbgas::strfmt(
        "    {\"pes\": %d, \"topology\": \"%s\", \"results\": [\n", n,
        config.topology_name.c_str());
    std::size_t i = 0;
    for (const auto& [key, row] : rows) {
      const std::string winner = xbgas::strfmt(
          "%s r%d c%zu", xbgas::coll_algo_name(row.winner.algo),
          row.winner.radix, row.winner.chunk);
      out.add_row({xbgas::coll_kind_name(row.kind),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.bytes)),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.flat_tree)),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.ring)),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.hier)),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.model)),
                   xbgas::AsciiTable::cell(
                       static_cast<unsigned long long>(row.tuned)),
                   winner});
      json += xbgas::strfmt(
          "      {\"kind\": \"%s\", \"nelems\": %zu, \"bytes\": %zu, "
          "\"flat_tree\": %llu, \"ring\": %llu, \"hier\": %llu, "
          "\"model\": %llu, \"tuned\": %llu, \"winner\": \"%s\", "
          "\"winner_radix\": %d, \"winner_chunk\": %zu}%s\n",
          xbgas::coll_kind_name(row.kind), row.nelems, row.bytes,
          static_cast<unsigned long long>(row.flat_tree),
          static_cast<unsigned long long>(row.ring),
          static_cast<unsigned long long>(row.hier),
          static_cast<unsigned long long>(row.model),
          static_cast<unsigned long long>(row.tuned),
          xbgas::coll_algo_name(row.winner.algo), row.winner.radix,
          row.winner.chunk, ++i < rows.size() ? "," : "");
    }
    out.print();
    json += "    ]}";
    json += mi + 1 < pes.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) throw xbgas::Error("cannot write " + json_path);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!table_path.empty()) {
    merged.save(table_path);
    std::printf("wrote %s (%zu entries)\n", table_path.c_str(),
                merged.size());
  }
  return 0;
}
