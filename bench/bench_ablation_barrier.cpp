// Ablation A4: barrier algorithm under the collectives' per-stage
// synchronization (paper §4.3 puts a barrier at the end of every tree
// stage, so barrier cost multiplies into every collective). Compares the
// modeled dissemination / central / tournament barriers, standalone and
// under a broadcast-heavy loop.
//
//   bench_ablation_barrier [--pes 2,4,8,16] [--reps 100]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/collectives.hpp"
#include "common/cli.hpp"

namespace {

struct Sample {
  std::uint64_t barrier_cycles = 0;
  std::uint64_t bcast_cycles = 0;
};

Sample run_with(const xbgas::CliArgs& args, int n,
                xbgas::BarrierAlgorithm algorithm, int reps) {
  xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
  config.net.barrier_algorithm = algorithm;
  xbgas::Machine machine(config);
  Sample sample;
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* buf = static_cast<long*>(xbgas::xbrtime_malloc(64 * sizeof(long)));
    xbgas::xbrtime_barrier();

    const std::uint64_t t0 = pe.clock().cycles();
    for (int r = 0; r < reps; ++r) xbgas::xbrtime_barrier();
    const std::uint64_t t1 = pe.clock().cycles();

    for (int r = 0; r < reps; ++r) {
      xbgas::broadcast(buf, buf, 64, 1, 0);
    }
    const std::uint64_t t2 = pe.clock().cycles();

    if (pe.rank() == 0) {
      sample.barrier_cycles = (t1 - t0) / static_cast<std::uint64_t>(reps);
      sample.bcast_cycles = (t2 - t1) / static_cast<std::uint64_t>(reps);
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(buf);
    xbgas::xbrtime_close();
  });
  xbgas::emit_observability(machine, args);
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {2, 4, 8, 16});
  const int reps = static_cast<int>(args.get_int("reps", 100));

  std::printf("== Ablation A4: barrier algorithm cost (modeled cycles) ==\n");
  xbgas::AsciiTable table({"PEs", "algorithm", "cycles/barrier",
                           "cycles/64-elem bcast"});
  const std::pair<xbgas::BarrierAlgorithm, const char*> algos[] = {
      {xbgas::BarrierAlgorithm::kDissemination, "dissemination"},
      {xbgas::BarrierAlgorithm::kCentral, "central"},
      {xbgas::BarrierAlgorithm::kTournament, "tournament"},
  };
  for (const int n : pes) {
    for (const auto& [algo, name] : algos) {
      const Sample s = run_with(args, n, algo, reps);
      table.add_row(
          {xbgas::AsciiTable::cell(static_cast<long long>(n)), name,
           xbgas::AsciiTable::cell(
               static_cast<unsigned long long>(s.barrier_cycles)),
           xbgas::AsciiTable::cell(
               static_cast<unsigned long long>(s.bcast_cycles))});
    }
  }
  table.print();
  std::printf("(central serializes at the root and falls behind as PE count "
              "grows; every tree stage pays this cost once)\n");
  return 0;
}
