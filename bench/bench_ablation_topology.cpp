// Ablation A2: the binomial tree across interconnect topologies (paper
// §4.2 motivates the tree precisely because it assumes no topology). Runs
// the same broadcast+reduce pair on flat / ring / torus / hypercube fabrics
// and reports modeled cycles plus topology metrics.
//
//   bench_ablation_topology [--pes 4,8,16] [--elems 256]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/collectives.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"
#include "net/topology.hpp"

namespace {

std::uint64_t run_pair(xbgas::Machine& machine, std::size_t nelems, int reps) {
  std::uint64_t cycles = 0;
  machine.reset_time_and_stats();
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* a = static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    auto* b = static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    for (std::size_t i = 0; i < nelems; ++i) a[i] = pe.rank() + 1;
    xbgas::xbrtime_barrier();
    const std::uint64_t t0 = pe.clock().cycles();
    for (int r = 0; r < reps; ++r) {
      xbgas::broadcast(b, a, nelems, 1, 0);
      xbgas::reduce<xbgas::OpSum>(a, b, nelems, 1, 0);
      xbgas::xbrtime_barrier();
    }
    const std::uint64_t t1 = pe.clock().cycles();
    if (pe.rank() == 0) cycles = (t1 - t0) / static_cast<std::uint64_t>(reps);
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(b);
    xbgas::xbrtime_free(a);
    xbgas::xbrtime_close();
  });
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {4, 8, 16});
  const auto nelems = static_cast<std::size_t>(args.get_int("elems", 256));
  const int reps = static_cast<int>(args.get_int("reps", 5));

  std::printf("== Ablation A2: binomial broadcast+reduce across topologies "
              "(%zu elems) ==\n", nelems);

  xbgas::AsciiTable table({"PEs", "topology", "diameter", "mean hops",
                           "cycles/op-pair"});
  for (const int n : pes) {
    for (const char* topo : {"flat", "ring", "torus", "hypercube"}) {
      xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
      config.topology_name = topo;
      xbgas::Machine machine(config);
      const std::uint64_t cycles = run_pair(machine, nelems, reps);
      xbgas::emit_observability(machine, args);
      const xbgas::Topology& t = machine.network().topology();
      table.add_row(
          {xbgas::AsciiTable::cell(static_cast<long long>(n)), t.name(),
           xbgas::AsciiTable::cell(static_cast<long long>(t.diameter())),
           xbgas::strfmt("%.2f", t.mean_hops()),
           xbgas::AsciiTable::cell(static_cast<unsigned long long>(cycles))});
    }
  }
  table.print();
  std::printf("(the tree's cost tracks topology diameter through per-hop "
              "latency; flat == the paper's single-fabric environment)\n");
  return 0;
}
