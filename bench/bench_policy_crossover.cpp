// Policy crossover curve: measured tree vs ring reduce_all across message
// sizes, next to the CollectivePolicy model's predictions — the experiment
// that validates `--coll-algo auto` (src/collectives/policy.hpp). For each
// (n_pes, nelems) point the bench runs reduce_all three times — forced tree,
// forced ring, and auto — and reports which family auto picked (read back
// from the coll.* dispatch counters), the measured cycles, and the model's
// predicted costs and crossover element count.
//
// Defaults to the switched-fabric profile (every link concurrent, as in
// ablation A6's "net" fabric), where the ring's pipelining can actually win;
// pass --bus to keep the shared-bus default and watch the tree win at every
// size. docs/COLLECTIVES.md and EXPERIMENTS.md describe the protocol;
// BENCH_policy_crossover.json in the repo root is a committed run.
//
//   bench_policy_crossover [--pes 4,8,12] [--sizes 16,...,65536]
//                          [--reps 3] [--bus] [--json PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/composed.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"

namespace {

xbgas::MachineConfig bench_config(const xbgas::CliArgs& args, int n,
                                  const std::string& algo, bool bus) {
  xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
  if (!bus) {  // switched fabric: links run concurrently (A6 "net" profile)
    config.net.fabric_message_cycles = 0;
    config.net.fabric_bytes_per_cycle = 1e12;
  }
  config.coll_algo = algo;
  return config;
}

struct MeasuredPoint {
  std::uint64_t cycles = 0;
  std::string resolved;  ///< family the dispatcher actually ran
};

MeasuredPoint measure_reduce_all(const xbgas::CliArgs& args, int n,
                                 std::size_t nelems, const std::string& algo,
                                 bool bus, int reps) {
  xbgas::Machine machine(bench_config(args, n, algo, bus));
  xbgas::reset_coll_dispatch_counts();
  MeasuredPoint out;
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* dest =
        static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    auto* src =
        static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i] = pe.rank() + static_cast<long>(i % 5);
    }
    xbgas::xbrtime_barrier();
    xbgas::reduce_all<xbgas::OpSum>(dest, src, nelems, 1);  // warm pass
    xbgas::xbrtime_barrier();
    std::uint64_t total = 0;
    for (int r = 0; r < reps; ++r) {
      const std::uint64_t t0 = pe.clock().cycles();
      xbgas::reduce_all<xbgas::OpSum>(dest, src, nelems, 1);
      xbgas::xbrtime_barrier();
      total += pe.clock().cycles() - t0;
    }
    if (pe.rank() == 0) out.cycles = total / static_cast<std::uint64_t>(reps);
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(src);
    xbgas::xbrtime_free(dest);
    xbgas::xbrtime_close();
  });
  // Sweep-bench observability contract (docs/OBSERVABILITY.md): emit once
  // per configuration; the trace file on disk belongs to the last one.
  xbgas::emit_observability(machine, args);
  // Every dispatch of this (size, n) point resolves identically, so the
  // busiest allreduce row of the counters is the family that ran.
  const xbgas::CollDispatchCounts counts = xbgas::coll_dispatch_counts();
  const auto kind = static_cast<int>(xbgas::CollKind::kAllreduce);
  int best = static_cast<int>(xbgas::CollAlgo::kTree);
  for (int a = 1; a < xbgas::kCollAlgoCount; ++a) {
    if (counts.by_kind_algo[kind][a] >
        counts.by_kind_algo[kind][best]) {
      best = a;
    }
  }
  out.resolved = xbgas::coll_algo_name(static_cast<xbgas::CollAlgo>(best));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {4, 8, 12});
  const std::vector<int> sizes = args.get_int_list(
      "sizes", {16, 64, 256, 1024, 4096, 16384, 65536});
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const bool bus = args.get_bool("bus", false);
  const std::string json_path = args.get("json", "");

  std::printf("== Policy crossover: reduce_all tree vs ring vs --coll-algo "
              "auto (%s fabric, modeled cycles) ==\n",
              bus ? "shared-bus" : "switched");

  std::string json = "{\n  \"bench\": \"policy_crossover\",\n"
                     "  \"collective\": \"reduce_all\",\n"
                     "  \"elem_bytes\": 8,\n";
  json += xbgas::strfmt("  \"fabric\": \"%s\",\n  \"reps\": %d,\n",
                        bus ? "bus" : "switched", reps);
  json += "  \"pes\": [\n";

  for (std::size_t pi = 0; pi < pes.size(); ++pi) {
    const int n = pes[pi];
    const xbgas::CollectivePolicy policy(
        bench_config(args, n, "auto", bus));
    const std::size_t predicted = policy.crossover_nelems(
        xbgas::CollKind::kAllreduce, n, sizeof(long));
    std::printf("\n-- %d PEs (model crossover: %s elems) --\n", n,
                predicted == SIZE_MAX
                    ? "never"
                    : xbgas::strfmt("%zu", predicted).c_str());

    json += xbgas::strfmt("    {\"n_pes\": %d, ", n);
    json += predicted == SIZE_MAX
                ? std::string("\"model_crossover_nelems\": null, ")
                : xbgas::strfmt("\"model_crossover_nelems\": %zu, ",
                                predicted);
    json += "\"points\": [\n";

    xbgas::AsciiTable table({"elems", "tree", "ring", "auto", "auto picked",
                             "model tree", "model ring"});
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const auto nelems = static_cast<std::size_t>(sizes[si]);
      const MeasuredPoint tree =
          measure_reduce_all(args, n, nelems, "tree", bus, reps);
      const MeasuredPoint ring =
          measure_reduce_all(args, n, nelems, "ring", bus, reps);
      const MeasuredPoint pick =
          measure_reduce_all(args, n, nelems, "auto", bus, reps);
      const double m_tree = policy.tree_cost(xbgas::CollKind::kAllreduce, n,
                                             nelems, sizeof(long));
      const double m_ring = policy.ring_cost(xbgas::CollKind::kAllreduce, n,
                                             nelems, sizeof(long));
      table.add_row(
          {xbgas::AsciiTable::cell(static_cast<long long>(sizes[si])),
           xbgas::AsciiTable::cell(
               static_cast<unsigned long long>(tree.cycles)),
           xbgas::AsciiTable::cell(
               static_cast<unsigned long long>(ring.cycles)),
           xbgas::AsciiTable::cell(
               static_cast<unsigned long long>(pick.cycles)),
           pick.resolved, xbgas::strfmt("%.0f", m_tree),
           xbgas::strfmt("%.0f", m_ring)});
      json += xbgas::strfmt(
          "      {\"nelems\": %zu, \"tree_cycles\": %llu, "
          "\"ring_cycles\": %llu, \"auto_cycles\": %llu, "
          "\"auto_algo\": \"%s\", \"model_tree\": %.1f, "
          "\"model_ring\": %.1f}%s\n",
          nelems, static_cast<unsigned long long>(tree.cycles),
          static_cast<unsigned long long>(ring.cycles),
          static_cast<unsigned long long>(pick.cycles),
          pick.resolved.c_str(), m_tree, m_ring,
          si + 1 < sizes.size() ? "," : "");
    }
    table.print();
    json += "    ]}";
    json += pi + 1 < pes.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      throw xbgas::Error("cannot write " + json_path);
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf("(auto should track min(tree, ring); the pick column flips at "
              "the measured crossover)\n");
  return 0;
}
