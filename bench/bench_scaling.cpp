// Scaling curves for the N:M fiber machine (docs/SCALING.md): barrier and
// allreduce latency at 16..1024 PEs, in modeled cycles (what the simulated
// machine charges — should grow with log2 n for the tree/dissemination
// algorithms) and in host microseconds per op (what the scheduler costs —
// should stay laptop-friendly even at 1024 fibers). BENCH_scaling.json in
// the repo root is a committed run; EXPERIMENTS.md A9 is the protocol.
//
//   bench_scaling [--pes 16,64,256,1024] [--barrier-reps 64]
//                 [--allreduce-reps 8] [--nelems 256] [--json PATH]
//                 [--sched fibers|threads] [--sched-workers N]
//
// Segments default to slim (1 MiB shared / 64 KiB private per PE) so the
// 1024-PE point fits in ~1 GiB; --shared-mb/--private-mb override.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/composed.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strfmt.hpp"
#include "trace/collect.hpp"

namespace {

struct ScalePoint {
  int n_pes = 0;
  std::uint64_t barrier_cycles = 0;    ///< modeled cycles per barrier
  std::uint64_t allreduce_cycles = 0;  ///< modeled cycles per allreduce
  double barrier_host_us = 0.0;        ///< host µs per barrier (all PEs)
  double allreduce_host_us = 0.0;      ///< host µs per allreduce
  double region_host_ms = 0.0;         ///< whole region incl. fiber spawn
  std::uint64_t workers = 0;
  std::uint64_t switches = 0;
};

xbgas::MachineConfig scale_config(const xbgas::CliArgs& args, int n) {
  xbgas::MachineConfig config = xbgas::machine_config_from_cli(args, n);
  if (!args.has("shared-mb")) config.layout.shared_bytes = 1 << 20;
  if (!args.has("private-mb")) config.layout.private_bytes = 64 * 1024;
  return config;
}

ScalePoint measure(const xbgas::CliArgs& args, int n, int barrier_reps,
                   int allreduce_reps, std::size_t nelems) {
  using clk = std::chrono::steady_clock;
  xbgas::Machine machine(scale_config(args, n));
  ScalePoint out;
  out.n_pes = n;

  // Rank 0's fiber brackets each timed phase; one fiber timing the phase is
  // enough because the barrier at each end synchronizes everyone.
  clk::time_point t_bar0, t_bar1, t_red0, t_red1;
  const auto t_region0 = clk::now();
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* dest =
        static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    auto* src =
        static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    for (std::size_t i = 0; i < nelems; ++i) {
      src[i] = pe.rank() + static_cast<long>(i % 7);
    }
    xbgas::xbrtime_barrier();  // warm: everyone allocated

    const std::uint64_t c_bar0 = pe.clock().cycles();
    if (pe.rank() == 0) t_bar0 = clk::now();
    for (int r = 0; r < barrier_reps; ++r) xbgas::xbrtime_barrier();
    if (pe.rank() == 0) {
      t_bar1 = clk::now();
      out.barrier_cycles = (pe.clock().cycles() - c_bar0) /
                           static_cast<std::uint64_t>(barrier_reps);
    }

    xbgas::reduce_all<xbgas::OpSum>(dest, src, nelems, 1);  // warm pass
    xbgas::xbrtime_barrier();
    const std::uint64_t c_red0 = pe.clock().cycles();
    if (pe.rank() == 0) t_red0 = clk::now();
    for (int r = 0; r < allreduce_reps; ++r) {
      xbgas::reduce_all<xbgas::OpSum>(dest, src, nelems, 1);
      xbgas::xbrtime_barrier();
    }
    if (pe.rank() == 0) {
      t_red1 = clk::now();
      out.allreduce_cycles = (pe.clock().cycles() - c_red0) /
                             static_cast<std::uint64_t>(allreduce_reps);
    }

    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(src);
    xbgas::xbrtime_free(dest);
    xbgas::xbrtime_close();
  });
  const auto t_region1 = clk::now();

  const auto us = [](clk::time_point a, clk::time_point b) {
    return std::chrono::duration<double, std::micro>(b - a).count();
  };
  out.barrier_host_us = us(t_bar0, t_bar1) / barrier_reps;
  out.allreduce_host_us = us(t_red0, t_red1) / allreduce_reps;
  out.region_host_ms = us(t_region0, t_region1) / 1000.0;
  const xbgas::SchedStats ss = machine.sched_stats();
  out.workers = ss.workers;
  out.switches = ss.switches;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {16, 64, 256, 1024});
  const int barrier_reps = static_cast<int>(args.get_int("barrier-reps", 64));
  const int allreduce_reps =
      static_cast<int>(args.get_int("allreduce-reps", 8));
  const auto nelems = static_cast<std::size_t>(args.get_int("nelems", 256));
  const std::string json_path = args.get("json", "");

  std::printf("== Scaling: barrier + allreduce(%zu longs) latency vs n_pes "
              "(N:M fiber machine, docs/SCALING.md) ==\n", nelems);

  std::string json = "{\n  \"bench\": \"scaling\",\n";
  json += xbgas::strfmt(
      "  \"nelems\": %zu,\n  \"elem_bytes\": 8,\n"
      "  \"barrier_reps\": %d,\n  \"allreduce_reps\": %d,\n  \"points\": [\n",
      nelems, barrier_reps, allreduce_reps);

  xbgas::AsciiTable table({"pes", "barrier cyc", "allreduce cyc",
                           "barrier us", "allreduce us", "region ms",
                           "workers", "switches"});
  for (std::size_t pi = 0; pi < pes.size(); ++pi) {
    const ScalePoint p =
        measure(args, pes[pi], barrier_reps, allreduce_reps, nelems);
    table.add_row(
        {xbgas::AsciiTable::cell(static_cast<long long>(p.n_pes)),
         xbgas::AsciiTable::cell(
             static_cast<unsigned long long>(p.barrier_cycles)),
         xbgas::AsciiTable::cell(
             static_cast<unsigned long long>(p.allreduce_cycles)),
         xbgas::strfmt("%.1f", p.barrier_host_us),
         xbgas::strfmt("%.1f", p.allreduce_host_us),
         xbgas::strfmt("%.1f", p.region_host_ms),
         xbgas::AsciiTable::cell(static_cast<unsigned long long>(p.workers)),
         xbgas::AsciiTable::cell(
             static_cast<unsigned long long>(p.switches))});
    json += xbgas::strfmt(
        "    {\"n_pes\": %d, \"barrier_cycles\": %llu, "
        "\"allreduce_cycles\": %llu, \"barrier_host_us\": %.2f, "
        "\"allreduce_host_us\": %.2f, \"region_host_ms\": %.2f, "
        "\"workers\": %llu, \"switches\": %llu}%s\n",
        p.n_pes, static_cast<unsigned long long>(p.barrier_cycles),
        static_cast<unsigned long long>(p.allreduce_cycles),
        p.barrier_host_us, p.allreduce_host_us, p.region_host_ms,
        static_cast<unsigned long long>(p.workers),
        static_cast<unsigned long long>(p.switches),
        pi + 1 < pes.size() ? "," : "");
  }
  table.print();
  json += "  ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      throw xbgas::Error("cannot write " + json_path);
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf("(modeled cycles should grow ~log2(pes): dissemination "
              "barrier and tree allreduce are both log-depth)\n");
  return 0;
}
