// Ablation A5: point-to-point get/put latency and bandwidth versus message
// size and stride — the primitives every collective is built from (§3.3).
//
//   bench_pt2pt [--sizes 1,8,64,512,4096,32768] [--strides 1,2,8]

#include <cstdio>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"
#include "net/sim_clock.hpp"
#include "xbrtime/rma.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> sizes =
      args.get_int_list("sizes", {1, 8, 64, 512, 4096, 32768});
  const std::vector<int> strides = args.get_int_list("strides", {1, 2, 8});
  const int reps = static_cast<int>(args.get_int("reps", 10));

  std::printf("== Ablation A5: point-to-point strided get/put "
              "(8-byte elements, modeled) ==\n");

  xbgas::AsciiTable table({"elems", "stride", "put cycles", "get cycles",
                           "put MB/s", "get MB/s"});

  xbgas::Machine machine(xbgas::machine_config_from_cli(args, 2));
  machine.run([&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    const std::size_t max_span =
        static_cast<std::size_t>(sizes.back()) *
        static_cast<std::size_t>(strides.back());
    auto* buf = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(max_span * sizeof(std::uint64_t)));
    // The local side also lives in the arena so the cache model sees it and
    // the stride sweep exposes spatial-locality effects.
    auto* local = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(max_span * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < max_span; ++i) local[i] = 1;
    xbgas::xbrtime_barrier();

    if (pe.rank() == 0) {
      for (const int size : sizes) {
        for (const int stride : strides) {
          const auto nelems = static_cast<std::size_t>(size);
          // Warm the cache model so the table reports steady-state costs.
          xbgas::xbr_put(buf, local, nelems, stride, 1);
          xbgas::xbr_get(local, buf, nelems, stride, 1);
          std::uint64_t put_cycles = 0, get_cycles = 0;
          for (int r = 0; r < reps; ++r) {
            const std::uint64_t t0 = pe.clock().cycles();
            xbgas::xbr_put(buf, local, nelems, stride, 1);
            const std::uint64_t t1 = pe.clock().cycles();
            xbgas::xbr_get(local, buf, nelems, stride, 1);
            const std::uint64_t t2 = pe.clock().cycles();
            put_cycles += t1 - t0;
            get_cycles += t2 - t1;
          }
          put_cycles /= static_cast<std::uint64_t>(reps);
          get_cycles /= static_cast<std::uint64_t>(reps);
          const double bytes = static_cast<double>(nelems) * 8.0;
          const auto mbps = [&](std::uint64_t cycles) {
            return bytes /
                   (static_cast<double>(cycles) / xbgas::SimClock::kDefaultHz) /
                   1e6;
          };
          table.add_row(
              {xbgas::AsciiTable::cell(static_cast<long long>(size)),
               xbgas::AsciiTable::cell(static_cast<long long>(stride)),
               xbgas::AsciiTable::cell(
                   static_cast<unsigned long long>(put_cycles)),
               xbgas::AsciiTable::cell(
                   static_cast<unsigned long long>(get_cycles)),
               xbgas::strfmt("%.1f", mbps(put_cycles)),
               xbgas::strfmt("%.1f", mbps(get_cycles))});
        }
      }
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(local);
    xbgas::xbrtime_free(buf);
    xbgas::xbrtime_close();
  });

  table.print();
  std::printf("(gets cost a round trip; puts are one-way — the asymmetry the "
              "collectives' direction choices exploit)\n");
  xbgas::emit_observability(machine, args);
  return 0;
}
