// Table 2 reproduction: logical-to-virtual rank mapping. Defaults to the
// paper's worked example (7 PEs, root 4); --pes and --root print any other
// configuration.

#include <cstdio>

#include "benchlib/table.hpp"
#include "collectives/vrank.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("pes", 7));
  const int root = static_cast<int>(args.get_int("root", 4));

  std::printf("== Table 2: logical to virtual rank mapping (%d PEs, root %d) "
              "==\n",
              n, root);
  xbgas::AsciiTable table({"log_rank", "vir_rank"});
  for (int lr = 0; lr < n; ++lr) {
    table.add_row(
        {xbgas::AsciiTable::cell(static_cast<long long>(lr)),
         xbgas::AsciiTable::cell(
             static_cast<long long>(xbgas::virtual_rank(lr, root, n)))});
  }
  table.print();
  return 0;
}
