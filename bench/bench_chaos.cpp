// Chaos soak harness for the survivor-recovery protocol
// (docs/RESILIENCE.md): run a checkpointed RMA + allreduce workload while
// PEs are killed at scripted or seeded-random points, shrink the team after
// every death, restore the heap, and verify the collective result against
// the roster golden. Exits nonzero on any verification or bookkeeping
// failure, so it slots directly into scripts/check.sh.
//
//   Scripted:  bench_chaos --pes 12 --rounds 4 --fault-kill 3:barrier:11,7:rma:4
//   Soak:      bench_chaos --pes 10 --rounds 4 --seeds 8 [--seed-base 1]
//
//   --pes N          PEs per machine (default 12)
//   --rounds N       verified workload rounds per run (default 6)
//   --elems N        8-byte elements per buffer (default 256)
//   --seeds N        soak mode: run N seeded machines with derived kills
//   --seed-base N    first soak seed (default 1)
//   --fault-kill ... scripted mode: explicit kill list (benchlib flag)
//
// Plus the standard machine/fault/trace flags (benchlib/options.hpp).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "collectives/checkpoint.hpp"
#include "collectives/collectives.hpp"
#include "collectives/policy.hpp"
#include "collectives/shrink.hpp"
#include "common/cli.hpp"
#include "trace/collect.hpp"
#include "xbrtime/rma.hpp"
#include "xbrtime/runtime.hpp"

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// 1-2 kills on distinct ranks, derived deterministically from the seed.
/// Barrier kills land past the symmetric setup (init + 2 mallocs +
/// checkpoint = 9 arrivals) so the survivors always hold their buffers.
std::vector<xbgas::KillSpec> derive_kills(std::uint64_t seed, int n_pes,
                                          int rounds) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  std::vector<xbgas::KillSpec> kills;
  const int n_kills = 1 + static_cast<int>(splitmix64(s) % 2);
  for (int i = 0; i < n_kills; ++i) {
    xbgas::KillSpec k;
    for (;;) {
      k.rank = static_cast<int>(splitmix64(s) %
                                static_cast<std::uint64_t>(n_pes));
      bool fresh = true;
      for (const xbgas::KillSpec& seen : kills) fresh &= seen.rank != k.rank;
      if (fresh) break;
    }
    switch (splitmix64(s) % 3) {
      case 0:
        k.site = xbgas::KillSite::kBarrier;
        k.at = 10 + splitmix64(s) %
                        static_cast<std::uint64_t>(
                            static_cast<unsigned>(rounds) + 4u);
        break;
      case 1:
        k.site = xbgas::KillSite::kRma;
        k.at = 1 + splitmix64(s) % 8;
        break;
      default:
        k.site = xbgas::KillSite::kAgree;
        k.at = 1 + splitmix64(s) % 2;
        break;
    }
    kills.push_back(k);
  }
  return kills;
}

std::uint64_t pattern(int rank, std::size_t i) {
  return static_cast<std::uint64_t>(rank) * 1000003 + i;
}

struct RunStats {
  int verify_failures = 0;
  std::uint64_t kills_fired = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t restores = 0;
  int pes_alive = 0;
  bool books_balance = false;
};

/// One machine lifetime: rounds of (remote put + allreduce + barrier) with
/// shrink + restore recovery after every death. Returns the verdict.
RunStats run_once(xbgas::MachineConfig config, int rounds,
                  std::size_t elems, const xbgas::CliArgs& args,
                  bool observe) {
  const int n_pes = config.n_pes;
  xbgas::Machine machine(config);
  std::vector<int> bad(static_cast<std::size_t>(n_pes), 0);
  const auto body = [&](xbgas::PeContext& pe) {
    xbgas::xbrtime_init();
    auto* data = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(elems * sizeof(std::uint64_t)));
    auto* scratch = static_cast<std::uint64_t*>(
        xbgas::xbrtime_malloc(elems * sizeof(std::uint64_t)));
    for (std::size_t i = 0; i < elems; ++i) {
      data[i] = pattern(pe.rank(), i);
    }
    xbgas::xbr_checkpoint();

    const auto me = static_cast<std::size_t>(pe.rank());
    std::unique_ptr<xbgas::SurvivorTeam> team;
    auto recover = [&] {
      for (;;) {
        try {
          team = team ? xbgas::xbr_team_shrink(*team)
                      : xbgas::xbr_team_shrink();
          std::memset(data, 0, elems * sizeof(std::uint64_t));
          xbgas::xbr_restore(*team);
          for (std::size_t i = 0; i < elems; ++i) {
            if (data[i] != pattern(pe.rank(), i)) bad[me] = 1;
          }
          return;
        } catch (const xbgas::PeFailedError&) {
          // Another death interrupted the recovery itself; agree again.
        }
      }
    };

    for (int round = 0; round < rounds; ++round) {
      bool done = false;
      while (!done) {
        try {
          for (std::size_t i = 0; i < elems; ++i) {
            data[i] = static_cast<std::uint64_t>(pe.rank() + 1 + round);
          }
          std::uint64_t expect = 0;
          if (team) {
            xbgas::dispatch_reduce_all<xbgas::OpSum>(scratch, data, elems, 1,
                                                     *team);
            for (const int wr : team->members()) {
              expect += static_cast<std::uint64_t>(wr + 1 + round);
            }
            for (std::size_t i = 0; i < elems; ++i) {
              if (scratch[i] != expect) bad[me] = 1;
            }
            team->barrier();
          } else {
            xbgas::xbr_put(scratch, data, elems, 1,
                           (pe.rank() + 1) % n_pes);
            xbgas::xbrtime_barrier();
            xbgas::dispatch_reduce_all<xbgas::OpSum>(scratch, data, elems,
                                                     1);
            for (int wr = 0; wr < n_pes; ++wr) {
              expect += static_cast<std::uint64_t>(wr + 1 + round);
            }
            for (std::size_t i = 0; i < elems; ++i) {
              if (scratch[i] != expect) bad[me] = 1;
            }
            xbgas::xbrtime_barrier();
          }
          done = true;
        } catch (const xbgas::PeFailedError&) {
          recover();
        }
      }
    }
    // No xbrtime_close(): after a death the world barrier stays poisoned.
  };

  bool region_failed = false;
  try {
    machine.run(body);
  } catch (const xbgas::SpmdRegionError& e) {
    // A kill landed somewhere the harness cannot recover from (e.g. inside
    // the symmetric setup). Report it as a failure, not a crash.
    region_failed = true;
    std::printf("unrecovered region: %s\n", e.what());
  }

  RunStats stats;
  const xbgas::CounterRegistry counters = xbgas::collect_counters(machine);
  stats.kills_fired = counters.get("fault.injected.kills").value();
  stats.shrinks = counters.get("recovery.shrinks").value();
  stats.restores = counters.get("recovery.restores").value();
  stats.pes_alive = machine.n_alive();
  stats.books_balance =
      !region_failed &&
      machine.n_alive() == n_pes - static_cast<int>(stats.kills_fired) &&
      machine.failed_ranks().size() == stats.kills_fired;
  for (int r = 0; r < n_pes; ++r) {
    if (machine.alive(r) && bad[static_cast<std::size_t>(r)] != 0) {
      ++stats.verify_failures;
    }
  }
  if (!stats.books_balance || stats.verify_failures != 0) {
    std::printf("%s\n", machine.health().c_str());
  }
  if (observe) xbgas::emit_observability(machine, args);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n_pes = static_cast<int>(args.get_int("pes", 12));
  const int rounds = static_cast<int>(args.get_int("rounds", 6));
  const auto elems =
      static_cast<std::size_t>(args.get_int("elems", 256));
  const int n_seeds = static_cast<int>(args.get_int("seeds", 0));
  const auto seed_base =
      static_cast<std::uint64_t>(args.get_int("seed-base", 1));

  std::printf("== Chaos soak: survivor recovery under PE kills "
              "(%d PEs, %d rounds, %zu elems) ==\n",
              n_pes, rounds, elems);

  bool ok = true;
  if (n_seeds > 0) {
    // Soak mode: one machine per seed, kills derived from SplitMix64.
    for (int i = 0; i < n_seeds; ++i) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      xbgas::MachineConfig config =
          xbgas::machine_config_from_cli(args, n_pes);
      config.fault.kills = derive_kills(seed, n_pes, rounds);
      std::string plan;
      for (const xbgas::KillSpec& k : config.fault.kills) {
        const char* site = k.site == xbgas::KillSite::kBarrier ? "barrier"
                           : k.site == xbgas::KillSite::kRma   ? "rma"
                                                               : "agree";
        plan += (plan.empty() ? "" : ",") + std::to_string(k.rank) + ":" +
                site + ":" + std::to_string(k.at);
      }
      const RunStats s =
          run_once(config, rounds, elems, args, /*observe=*/false);
      const bool seed_ok = s.books_balance && s.verify_failures == 0;
      ok = ok && seed_ok;
      std::printf(
          "seed %llu  plan %-24s  kills %llu  shrinks %llu  restores %llu  "
          "alive %d/%d  %s\n",
          static_cast<unsigned long long>(seed), plan.c_str(),
          static_cast<unsigned long long>(s.kills_fired),
          static_cast<unsigned long long>(s.shrinks),
          static_cast<unsigned long long>(s.restores), s.pes_alive, n_pes,
          seed_ok ? "OK" : "FAIL");
    }
  } else {
    // Scripted mode: the kill plan comes from --fault-kill.
    const xbgas::MachineConfig config =
        xbgas::machine_config_from_cli(args, n_pes);
    const RunStats s =
        run_once(config, rounds, elems, args, /*observe=*/true);
    ok = s.books_balance && s.verify_failures == 0;
    std::printf("kills %llu  shrinks %llu  restores %llu  alive %d/%d  %s\n",
                static_cast<unsigned long long>(s.kills_fired),
                static_cast<unsigned long long>(s.shrinks),
                static_cast<unsigned long long>(s.restores), s.pes_alive,
                n_pes, ok ? "OK" : "FAIL");
  }

  if (!ok) {
    std::printf("bench_chaos: FAILED\n");
    return 1;
  }
  std::printf("bench_chaos: all runs recovered and verified\n");
  return 0;
}
