// Ablation A1: binomial tree vs linear (flat) collectives across message
// sizes and PE counts (paper §4.1-§4.2: trees win where latency dominates;
// there is "no universally optimal solution").
//
//   bench_ablation_tree_vs_linear [--pes 2,4,8,12,16] [--sizes 1,16,256,4096]
//
// Reports modeled cycles per operation. Two regimes (the paper's §4.1
// point that no algorithm wins everywhere):
//  - default bus-like fabric: every message crosses one shared fabric, so
//    broadcast is bandwidth-bound and tree ~= linear (the tree still wins
//    reduce decisively by parallelizing the combine work);
//  - uncongested network (--fabric-mpc 0 --fabric-bpc 1e9): latency-bound,
//    and the tree's O(log N) critical path beats the root's O(N) issue
//    serialization across the board.

#include <cstdio>
#include <functional>
#include <vector>

#include "benchlib/observe.hpp"
#include "benchlib/options.hpp"
#include "benchlib/table.hpp"
#include "collectives/baseline.hpp"
#include "collectives/collectives.hpp"
#include "common/cli.hpp"
#include "common/strfmt.hpp"

namespace {

using xbgas::PeContext;

/// Modeled cycles per op for a collective run `reps` times on `machine`.
std::uint64_t time_collective(
    xbgas::Machine& machine, std::size_t nelems, int reps,
    const std::function<void(long*, long*, std::size_t)>& op) {
  std::uint64_t cycles = 0;
  machine.reset_time_and_stats();
  machine.run([&](PeContext& pe) {
    xbgas::xbrtime_init();
    auto* a = static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    auto* b = static_cast<long*>(xbgas::xbrtime_malloc(nelems * sizeof(long)));
    for (std::size_t i = 0; i < nelems; ++i) {
      a[i] = static_cast<long>(i) + pe.rank();
      b[i] = 0;
    }
    xbgas::xbrtime_barrier();
    const std::uint64_t t0 = pe.clock().cycles();
    for (int r = 0; r < reps; ++r) {
      op(a, b, nelems);
      xbgas::xbrtime_barrier();  // buffer-reuse fence between reps
    }
    const std::uint64_t t1 = pe.clock().cycles();
    if (pe.rank() == 0) {
      cycles = (t1 - t0) / static_cast<std::uint64_t>(reps);
    }
    xbgas::xbrtime_barrier();
    xbgas::xbrtime_free(b);
    xbgas::xbrtime_free(a);
    xbgas::xbrtime_close();
  });
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const std::vector<int> pes = args.get_int_list("pes", {2, 4, 8, 12, 16});
  const std::vector<int> sizes = args.get_int_list("sizes", {1, 16, 256, 4096});
  const int reps = static_cast<int>(args.get_int("reps", 5));

  std::printf("== Ablation A1: binomial tree vs linear collectives "
              "(modeled cycles per op) ==\n");

  xbgas::AsciiTable table({"PEs", "elems", "bcast tree", "bcast linear",
                           "reduce tree", "reduce linear", "tree speedup"});
  for (const int n : pes) {
    for (const int size : sizes) {
      const auto nelems = static_cast<std::size_t>(size);
      xbgas::Machine machine(xbgas::machine_config_from_cli(args, n));

      const auto bcast_tree = time_collective(
          machine, nelems, reps, [](long* a, long* b, std::size_t k) {
            xbgas::broadcast(b, a, k, 1, 0);
          });
      const auto bcast_linear = time_collective(
          machine, nelems, reps, [](long* a, long* b, std::size_t k) {
            xbgas::linear_broadcast(b, a, k, 1, 0);
          });
      const auto reduce_tree = time_collective(
          machine, nelems, reps, [](long* a, long* b, std::size_t k) {
            xbgas::reduce<xbgas::OpSum>(b, a, k, 1, 0);
          });
      const auto reduce_linear = time_collective(
          machine, nelems, reps, [](long* a, long* b, std::size_t k) {
            xbgas::linear_reduce<xbgas::OpSum>(b, a, k, 1, 0);
          });
      xbgas::emit_observability(machine, args);

      table.add_row(
          {xbgas::AsciiTable::cell(static_cast<long long>(n)),
           xbgas::AsciiTable::cell(static_cast<long long>(size)),
           xbgas::AsciiTable::cell(static_cast<unsigned long long>(bcast_tree)),
           xbgas::AsciiTable::cell(static_cast<unsigned long long>(bcast_linear)),
           xbgas::AsciiTable::cell(static_cast<unsigned long long>(reduce_tree)),
           xbgas::AsciiTable::cell(static_cast<unsigned long long>(reduce_linear)),
           xbgas::strfmt("%.2fx", bcast_tree > 0
                                      ? static_cast<double>(bcast_linear) /
                                            static_cast<double>(bcast_tree)
                                      : 0.0)});
    }
  }
  table.print();
  return 0;
}
