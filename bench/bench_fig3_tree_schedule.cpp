// Figure 3 reproduction: the binomial tree with recursive halving. Prints
// the stage-by-stage communication schedule (broadcast direction) and the
// reverse (reduce direction), as virtual-rank edges.
//
//   bench_fig3_tree_schedule [--pes 8]

#include <cstdio>

#include "collectives/schedule.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  const xbgas::CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("pes", 8));

  std::printf("== Figure 3: binomial tree with recursive halving (%d PEs) "
              "==\n\n", n);
  std::printf("Broadcast/scatter direction (top-down, put-based):");
  int stage = -1;
  for (const auto& e : xbgas::broadcast_schedule(n)) {
    if (e.stage != stage) {
      stage = e.stage;
      std::printf("\n  stage %d:", stage);
    }
    std::printf("  %d->%d", e.from_vrank, e.to_vrank);
  }
  std::printf("\n\nReduce/gather direction (bottom-up, get-based):");
  stage = -1;
  for (const auto& e : xbgas::reduce_schedule(n)) {
    if (e.stage != stage) {
      stage = e.stage;
      std::printf("\n  stage %d:", stage);
    }
    std::printf("  %d<-%d", e.to_vrank, e.from_vrank);
  }
  std::printf("\n\nStages: %d (= ceil(log2 %d)); edges: %d\n",
              xbgas::schedule_stages(n), n, n - 1);
  return 0;
}
