// google-benchmark micro-benchmarks of the substrate hot paths: instruction
// codec, interpreter dispatch, cache/TLB model, symmetric allocator, GUPs
// stream jump-ahead, and schedule generation. These are host-side costs (how
// fast the simulator itself runs), not modeled cycles.

#include <benchmark/benchmark.h>

#include <vector>

#include "cache/hierarchy.hpp"
#include "collectives/schedule.hpp"
#include "common/rng.hpp"
#include "isa/builder.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "isa/hart.hpp"
#include "memory/freelist_allocator.hpp"

namespace {

void BM_EncodeDecode(benchmark::State& state) {
  const xbgas::isa::Instruction inst{xbgas::isa::Op::kEld, 5, 6, 0, 16};
  for (auto _ : state) {
    const std::uint32_t word = xbgas::isa::encode(inst);
    benchmark::DoNotOptimize(xbgas::isa::decode(word));
  }
}
BENCHMARK(BM_EncodeDecode);

void BM_DecodeRandomValid(benchmark::State& state) {
  // Pre-collect valid words so the loop measures pure decode.
  xbgas::Xoshiro256ss rng(1);
  std::vector<std::uint32_t> words;
  while (words.size() < 1024) {
    const auto w = static_cast<std::uint32_t>(rng.next());
    if (xbgas::isa::try_decode(w)) words.push_back(w);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbgas::isa::decode(words[i++ & 1023]));
  }
}
BENCHMARK(BM_DecodeRandomValid);

class NullPort final : public xbgas::isa::GlobalMemoryPort {
 public:
  xbgas::isa::MemAccessResult load(std::uint64_t, std::uint64_t, unsigned,
                                   std::uint64_t* value) override {
    *value = 0;
    return {.cycles = 1};
  }
  xbgas::isa::MemAccessResult store(std::uint64_t, std::uint64_t, unsigned,
                                    std::uint64_t) override {
    return {.cycles = 1};
  }
};

void BM_HartAluLoop(benchmark::State& state) {
  NullPort port;
  xbgas::isa::ProgramBuilder b;
  b.li(1, 1000).li(2, 0);
  b.label("loop");
  b.add(2, 2, 1).addi(1, 1, -1).bne(1, 0, "loop");
  b.ecall();
  xbgas::isa::Hart hart(port);
  const auto prog = b.build();
  for (auto _ : state) {
    hart.reset();
    hart.load_program(prog);
    benchmark::DoNotOptimize(hart.run());
  }
  state.SetItemsProcessed(state.iterations() * 3002);
}
BENCHMARK(BM_HartAluLoop);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  xbgas::CacheHierarchy cache;
  xbgas::Xoshiro256ss rng(7);
  const std::uint64_t mask = (1 << 24) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next() & mask, 8));
  }
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_FreeListAllocRelease(benchmark::State& state) {
  xbgas::FreeListAllocator alloc(std::size_t{64} << 20);
  for (auto _ : state) {
    const auto off = alloc.allocate(256);
    benchmark::DoNotOptimize(off);
    alloc.release(*off);
  }
}
BENCHMARK(BM_FreeListAllocRelease);

void BM_GupsStreamJumpAhead(benchmark::State& state) {
  std::int64_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbgas::GupsStream::at(n));
    n = (n * 31 + 7) & ((std::int64_t{1} << 40) - 1);
  }
}
BENCHMARK(BM_GupsStreamJumpAhead);

void BM_GupsStreamNext(benchmark::State& state) {
  xbgas::GupsStream stream = xbgas::GupsStream::at(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.next());
  }
}
BENCHMARK(BM_GupsStreamNext);

void BM_BroadcastSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xbgas::broadcast_schedule(n));
  }
}
BENCHMARK(BM_BroadcastSchedule)->Arg(8)->Arg(64)->Arg(1024);

void BM_NasRandlc(benchmark::State& state) {
  xbgas::NasRandlc rng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_NasRandlc);

}  // namespace

BENCHMARK_MAIN();
